// Serializability of histories (§3): order-given checks, existential
// search, Lemma 3's per-object reduction.
#include <gtest/gtest.h>

#include "check/serializability.h"
#include "common/errors.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;
using intseq = std::vector<ActivityId>;

SystemSpec one_set() {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  return sys;
}

SystemSpec set_and_counter() {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  sys.add_object(Y, "counter");
  return sys;
}

TEST(SerializationOf, ConcatenatesViews) {
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      invoke(X, B, op("insert", 2)),
      respond(X, A, ok()),
      respond(X, B, ok()),
      commit(X, A),
      commit(X, B),
  });
  const History serial = serialization_of(h, {B, A});
  EXPECT_TRUE(serial.is_serial());
  EXPECT_EQ(serial.serial_order(), (intseq{B, A}));
  EXPECT_TRUE(serial.equivalent(h));
}

TEST(SerializationOf, MissingActivitiesAppended) {
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      invoke(X, B, op("insert", 2)),
      respond(X, B, ok()),
  });
  const History serial = serialization_of(h, {B});
  EXPECT_EQ(serial.serial_order(), (intseq{B, A}));
}

TEST(SerializableInOrder, InterleavedInsertsBothOrders) {
  const auto sys = one_set();
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      invoke(X, B, op("insert", 2)),
      respond(X, A, ok()),
      respond(X, B, ok()),
      commit(X, A),
      commit(X, B),
  });
  EXPECT_TRUE(serializable_in_order(sys, h, {A, B}));
  EXPECT_TRUE(serializable_in_order(sys, h, {B, A}));
}

TEST(SerializableInOrder, ObservationPinsOrder) {
  const auto sys = one_set();
  // b observes a's insert: only a-b works.
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit(X, A),
      commit(X, B),
  });
  EXPECT_TRUE(serializable_in_order(sys, h, {A, B}));
  EXPECT_FALSE(serializable_in_order(sys, h, {B, A}));
}

TEST(FindSerializationOrder, FindsSomeOrder) {
  const auto sys = one_set();
  const History h = hist({
      invoke(X, B, op("member", 3)),
      invoke(X, A, op("insert", 3)),
      respond(X, B, Value{true}),  // b must come after a
      respond(X, A, ok()),
      commit(X, A),
      commit(X, B),
  });
  const auto order = find_serialization_order(sys, h);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (intseq{A, B}));
}

TEST(FindSerializationOrder, NoneExists) {
  const auto sys = one_set();
  // a sees 3 absent then present without any intervening activity order
  // that explains both b-inserted and a-observed-false: a reads false
  // then true while only b inserts once — impossible serially for a
  // single activity's view? Construct the §3 non-atomic example instead:
  // member(2) true on empty set.
  const History h = hist({
      invoke(X, A, op("member", 2)),
      respond(X, A, Value{true}),
      commit(X, A),
  });
  EXPECT_FALSE(serializable(sys, h));
  EXPECT_EQ(find_serialization_order(sys, h), std::nullopt);
}

TEST(Serializable, MultiObjectConsistencyRequired) {
  const auto sys = set_and_counter();
  // At x, b must follow a (member sees insert); at y, a must follow b
  // (counter values). No single order works: Lemma 3's conjunction
  // fails.
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      invoke(Y, B, op("increment")),
      respond(Y, B, Value{1}),
      invoke(Y, A, op("increment")),
      respond(Y, A, Value{2}),
      commit(X, A),
      commit(Y, A),
      commit(X, B),
      commit(Y, B),
  });
  EXPECT_FALSE(serializable(sys, h));
}

TEST(Serializable, MultiObjectConsistentOrderFound) {
  const auto sys = set_and_counter();
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      invoke(Y, A, op("increment")),
      respond(Y, A, Value{1}),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      invoke(Y, B, op("increment")),
      respond(Y, B, Value{2}),
      commit(X, A),
      commit(Y, A),
      commit(X, B),
      commit(Y, B),
  });
  const auto order = find_serialization_order(sys, h);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (intseq{A, B}));
}

TEST(AllSerializationOrders, CountsOrders) {
  const auto sys = one_set();
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      invoke(X, B, op("insert", 2)),
      invoke(X, C, op("member", 9)),
      respond(X, A, ok()),
      respond(X, B, ok()),
      respond(X, C, Value{false}),
      commit(X, A),
      commit(X, B),
      commit(X, C),
  });
  // Nothing observes anything: all 6 orders work.
  EXPECT_EQ(all_serialization_orders(sys, h).size(), 6u);
}

TEST(AllSerializationOrders, EmptyHistoryHasEmptyOrder) {
  const auto sys = one_set();
  const auto orders = all_serialization_orders(sys, History{});
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_TRUE(orders.front().empty());
}

TEST(Serializable, CounterPinsExactlyOneOrder) {
  // The optimality-proof object y: increment results expose the serial
  // positions, so only one order is serializable.
  SystemSpec sys;
  sys.add_object(Y, "counter");
  const History h = hist({
      invoke(Y, B, op("increment")),
      respond(Y, B, Value{1}),
      invoke(Y, A, op("increment")),
      respond(Y, A, Value{2}),
      invoke(Y, C, op("increment")),
      respond(Y, C, Value{3}),
      commit(Y, A),
      commit(Y, B),
      commit(Y, C),
  });
  const auto orders = all_serialization_orders(sys, h);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders.front(), (intseq{B, A, C}));
}

TEST(SystemSpec, UnknownObjectThrows) {
  SystemSpec sys;
  EXPECT_THROW((void)sys.spec_of(X), UsageError);
  sys.add_object(X, "int_set");
  EXPECT_EQ(sys.spec_of(X).type_name(), "int_set");
  EXPECT_TRUE(sys.has(X));
  EXPECT_FALSE(sys.has(Y));
}

TEST(SystemSpec, ObjectsSorted) {
  SystemSpec sys;
  sys.add_object(Y, "counter");
  sys.add_object(X, "int_set");
  EXPECT_EQ(sys.objects(), (std::vector<ObjectId>{X, Y}));
}

}  // namespace
}  // namespace argus
