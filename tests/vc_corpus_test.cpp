// Vector-clock corpus replay: the checked-in histories in
// tests/corpus/vc/ are minimized disagreement candidates and boundary
// cases worth pinning forever — one per fast-path decision family
// (clean fold, proven violation, escalation-resolved swap, commuting
// swap). Each file carries its expected kEscalating verdict; the replay
// asserts it at several window sizes and checks the monitoring-only
// mode's soundness on the same history.
//
// The binary doubles as the minimization tool:
//
//   vc_corpus_test --minimize <history-file>
//
// replays a file whose verdict disagrees with its "# expect:" line,
// shrinks it by greedy activity removal to the smallest history that
// still disagrees, and prints the result (ready to check back into the
// corpus, or to attach to a bug).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/vc_atomicity.h"
#include "hist/parse.h"

namespace argus {
namespace {

struct CorpusCase {
  SystemSpec system;
  History history;
  VcVerdict expect{VcVerdict::kPass};
};

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Inverse of to_string(ObjectId): "x"/"y"/"z" then "objN".
bool parse_object_name(const std::string& name, ObjectId* out) {
  if (name == "x") {
    *out = ObjectId{0};
    return true;
  }
  if (name == "y") {
    *out = ObjectId{1};
    return true;
  }
  if (name == "z") {
    *out = ObjectId{2};
    return true;
  }
  if (name.rfind("obj", 0) == 0) {
    *out = ObjectId{std::stoull(name.substr(3))};
    return true;
  }
  return false;
}

/// Parses the "# expect:" / "# object <name> <type>" directives plus the
/// history body (parse_history skips the comment lines itself).
bool parse_corpus_case(const std::string& text, CorpusCase* out,
                       std::string* error) {
  bool saw_expect = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string hash, keyword;
    fields >> hash >> keyword;
    if (hash != "#") continue;
    if (keyword == "expect:") {
      std::string verdict;
      fields >> verdict;
      if (verdict == "pass") {
        out->expect = VcVerdict::kPass;
      } else if (verdict == "violation") {
        out->expect = VcVerdict::kViolation;
      } else if (verdict == "suspicious") {
        out->expect = VcVerdict::kSuspicious;
      } else {
        *error = "unknown expect verdict: " + verdict;
        return false;
      }
      saw_expect = true;
    } else if (keyword == "object") {
      std::string name, type;
      fields >> name >> type;
      ObjectId id;
      if (!parse_object_name(name, &id) || type.empty()) {
        *error = "bad object directive: " + line;
        return false;
      }
      out->system.add_object(id, type);
    }
  }
  if (!saw_expect) {
    *error = "missing '# expect:' directive";
    return false;
  }
  if (out->system.objects().empty()) {
    *error = "missing '# object' directive";
    return false;
  }
  ParseResult parsed = parse_history(text);
  if (!parsed.history.has_value()) {
    *error = parsed.error;
    return false;
  }
  out->history = std::move(*parsed.history);
  return true;
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> out;
  for (const auto& entry :
       std::filesystem::directory_iterator(ARGUS_VC_CORPUS_DIR)) {
    if (entry.path().extension() == ".txt") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class VcCorpus : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(VcCorpus, ReplaysToItsPinnedVerdict) {
  const auto path = GetParam();
  CorpusCase c;
  std::string error;
  ASSERT_TRUE(parse_corpus_case(read_file(path), &c, &error))
      << path << ": " << error;

  for (const std::size_t window : {std::size_t{0}, std::size_t{2},
                                   std::size_t{4}}) {
    const VcReport esc = check_vc_atomic(c.system, c.history, {}, window);
    EXPECT_EQ(esc.verdict, c.expect)
        << path << " window " << window << ": kEscalating said "
        << to_string(esc.verdict);

    // Monitoring-only soundness on the same history: never PASS a pinned
    // violation, never claim a violation on a pinned pass.
    VcCheckerOptions vc_only;
    vc_only.escalate = false;
    const VcReport vc = check_vc_atomic(c.system, c.history, vc_only, window);
    if (c.expect == VcVerdict::kViolation) {
      EXPECT_NE(vc.verdict, VcVerdict::kPass) << path << " window " << window;
    } else if (c.expect == VcVerdict::kPass) {
      EXPECT_NE(vc.verdict, VcVerdict::kViolation)
          << path << " window " << window;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, VcCorpus, ::testing::ValuesIn(corpus_files()),
                         [](const auto& info) {
                           std::string name = info.param.stem().string();
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

TEST(VcCorpus, CorpusIsNotEmpty) { EXPECT_GE(corpus_files().size(), 3u); }

History drop_activity(const History& h, ActivityId a) {
  std::vector<Event> kept;
  for (const Event& e : h.events()) {
    if (e.activity != a) kept.push_back(e);
  }
  return History(std::move(kept));
}

int minimize_main(const std::string& file) {
  CorpusCase c;
  std::string error;
  if (!parse_corpus_case(read_file(file), &c, &error)) {
    std::cerr << "cannot parse " << file << ": " << error << "\n";
    return 2;
  }
  const auto disagrees = [&c](const History& h) {
    return check_vc_atomic(c.system, h).verdict != c.expect;
  };
  if (!disagrees(c.history)) {
    std::cout << "history replays to its pinned verdict ("
              << to_string(c.expect) << "); nothing to minimize\n";
    return 0;
  }
  std::cout << "verdict disagrees with the pinned "
            << to_string(c.expect) << "; minimizing over "
            << c.history.activities().size() << " activities...\n";
  History current = c.history;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (ActivityId a : current.activities()) {
      History candidate = drop_activity(current, a);
      if (disagrees(candidate)) {
        current = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  const VcReport report = check_vc_atomic(c.system, current);
  std::cout << "\nsmallest disagreeing history ("
            << current.activities().size() << " activities), kEscalating says "
            << to_string(report.verdict) << ":\n\n"
            << current.to_string() << "\n";
  return 1;  // the history still disagrees — that is the point of the tool
}

}  // namespace
}  // namespace argus

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--minimize") {
    return argus::minimize_main(argv[2]);
  }
  if (argc == 2 && std::string(argv[1]) == "--minimize") {
    std::cerr << "usage: " << argv[0] << " --minimize <history-file>\n";
    return 2;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
