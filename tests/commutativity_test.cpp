// Tests for the state-dependent forward-commutativity oracle — the
// data-dependent information at the heart of the paper's §5.1 argument.
#include <gtest/gtest.h>

#include "spec/adts/bag.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/counter.h"
#include "spec/adts/fifo_queue.h"
#include "spec/adts/int_set.h"
#include "spec/adts/registry.h"
#include "spec/commutativity.h"

namespace argus {
namespace {

// ---------------------------------------------------- bank account (§5.1)

TEST(ForwardCommutes, WithdrawsCommuteWhenCovered) {
  // Balance 10 covers 4+3: the two withdraws commute *in this state*.
  EXPECT_TRUE(forward_commutes<BankAccountAdt>(10, account::withdraw(4),
                                               account::withdraw(3)));
}

TEST(ForwardCommutes, WithdrawsConflictWhenNotCovered) {
  // Balance 5 covers either but not both.
  EXPECT_FALSE(forward_commutes<BankAccountAdt>(5, account::withdraw(4),
                                                account::withdraw(3)));
}

TEST(ForwardCommutes, WithdrawDepositCommuteWhenDepositNotNeeded) {
  // §5.1: "as long as the deposits are not needed to cover the
  // withdrawals".
  EXPECT_TRUE(forward_commutes<BankAccountAdt>(10, account::withdraw(3),
                                               account::deposit(5)));
}

TEST(ForwardCommutes, WithdrawDepositConflictWhenDepositNeeded) {
  EXPECT_FALSE(forward_commutes<BankAccountAdt>(2, account::withdraw(3),
                                                account::deposit(5)));
}

TEST(ForwardCommutes, BothInsufficientCommute) {
  // Neither withdraw can succeed; both return insufficient_funds in
  // either order and the state never changes.
  EXPECT_TRUE(forward_commutes<BankAccountAdt>(1, account::withdraw(4),
                                               account::withdraw(3)));
}

TEST(ForwardCommutes, DepositsAlwaysCommute) {
  for (std::int64_t balance : {0, 1, 100}) {
    EXPECT_TRUE(forward_commutes<BankAccountAdt>(balance, account::deposit(7),
                                                 account::deposit(9)));
  }
}

TEST(ForwardCommutes, BalanceConflictsWithDeposit) {
  EXPECT_FALSE(forward_commutes<BankAccountAdt>(10, account::balance(),
                                                account::deposit(1)));
}

TEST(ForwardCommutes, BalanceCommutesWithZeroStateChange) {
  // A withdraw that fails does not change the state, so balance commutes
  // with it in this state.
  EXPECT_TRUE(forward_commutes<BankAccountAdt>(2, account::balance(),
                                               account::withdraw(5)));
}

// ----------------------------------------------------------- queue (§5.1)

TEST(ForwardCommutes, EqualEnqueuesCommute) {
  EXPECT_TRUE(forward_commutes<FifoQueueAdt>({}, fifo::enqueue(1),
                                             fifo::enqueue(1)));
}

TEST(ForwardCommutes, DistinctEnqueuesConflict) {
  EXPECT_FALSE(forward_commutes<FifoQueueAdt>({}, fifo::enqueue(1),
                                              fifo::enqueue(2)));
}

TEST(ForwardCommutes, DequeueNotEnabledOnEmptyConflicts) {
  EXPECT_FALSE(forward_commutes<FifoQueueAdt>({}, fifo::dequeue(),
                                              fifo::enqueue(1)));
}

TEST(ForwardCommutes, DequeueEnqueueCommuteWhenQueueNonEmpty) {
  // With an item already at the front, the dequeue takes it in either
  // order and the enqueue lands at the back: they commute in this state
  // (which is exactly why the hybrid queue lets them overlap).
  EXPECT_TRUE(forward_commutes<FifoQueueAdt>({5}, fifo::dequeue(),
                                             fifo::enqueue(6)));
}

TEST(ForwardCommutes, DequeueDequeueConflictWithDistinctItems) {
  // Two dequeues of distinct items are order-sensitive: who gets 5?
  EXPECT_FALSE(forward_commutes<FifoQueueAdt>({5, 6}, fifo::dequeue(),
                                              fifo::dequeue()));
}

// ------------------------------------------------------------------ set

TEST(ForwardCommutes, SetInsertsCommuteEvenSameElement) {
  EXPECT_TRUE(
      forward_commutes<IntSetAdt>({}, intset::insert(3), intset::insert(3)));
}

TEST(ForwardCommutes, MemberInsertStateDependent) {
  // If 3 is already present, inserting it again does not change the
  // membership answer: they commute in this state...
  EXPECT_TRUE(forward_commutes<IntSetAdt>({3}, intset::member(3),
                                          intset::insert(3)));
  // ...but not when 3 is absent.
  EXPECT_FALSE(
      forward_commutes<IntSetAdt>({}, intset::member(3), intset::insert(3)));
}

TEST(ForwardCommutes, DeleteAbsentCommutesWithMember) {
  EXPECT_TRUE(
      forward_commutes<IntSetAdt>({}, intset::member(3), intset::del(3)));
}

// -------------------------------------------------------------- counter

TEST(ForwardCommutes, IncrementsNeverCommute) {
  EXPECT_FALSE(
      forward_commutes<CounterAdt>(0, counter::increment(), counter::increment()));
  EXPECT_FALSE(
      forward_commutes<CounterAdt>(7, counter::increment(), counter::increment()));
}

// ------------------------------------------- nondeterministic bag

TEST(ForwardCommutes, BagRemovesCommuteWithTwoElements) {
  BagAdt::State s;
  s[1] = 1;
  s[2] = 1;
  // Either order can produce (1,2) or (2,1) with the same final empty
  // bag: the outcome *sets* coincide.
  EXPECT_TRUE(forward_commutes<BagAdt>(s, bag::remove(), bag::remove()));
}

TEST(ForwardCommutes, BagRemovesConflictWithOneElement) {
  BagAdt::State s;
  s[1] = 1;
  EXPECT_FALSE(forward_commutes<BagAdt>(s, bag::remove(), bag::remove()));
}

TEST(ForwardCommutes, BagInsertRemoveConflictOnEmpty) {
  EXPECT_FALSE(forward_commutes<BagAdt>({}, bag::insert(1), bag::remove()));
}

// -------------------------------------------- virtual-interface version

TEST(ForwardCommutesVirtual, AgreesWithTemplate) {
  auto spec = make_spec("bank_account");
  auto s0 = spec->initial_state();
  // Advance to balance 10.
  auto next = s0->step(op("deposit", 10));
  ASSERT_EQ(next.size(), 1u);
  const auto& s10 = *next.front().state;
  EXPECT_TRUE(forward_commutes(s10, account::withdraw(4), account::withdraw(3)));
  EXPECT_FALSE(forward_commutes(s10, account::withdraw(7), account::withdraw(6)));
}

TEST(ForwardCommutesVirtual, DisabledOpsConflict) {
  auto spec = make_spec("fifo_queue");
  auto s0 = spec->initial_state();
  EXPECT_FALSE(forward_commutes(*s0, fifo::dequeue(), fifo::dequeue()));
}

// Property: the static table implies state-dependent commutativity on a
// sample of states (static_commutes is the ∀-state approximation).
TEST(ForwardCommutes, StaticTableIsSoundForAccount) {
  const std::vector<Operation> ops = {account::deposit(3), account::deposit(8),
                                      account::withdraw(2),
                                      account::withdraw(9), account::balance()};
  for (std::int64_t balance : {0, 1, 5, 10, 50}) {
    for (const auto& p : ops) {
      for (const auto& q : ops) {
        if (BankAccountAdt::static_commutes(p, q)) {
          EXPECT_TRUE(forward_commutes<BankAccountAdt>(balance, p, q))
              << to_string(p) << " vs " << to_string(q) << " at " << balance;
        }
      }
    }
  }
}

TEST(ForwardCommutes, StaticTableIsSoundForSet) {
  const std::vector<Operation> ops = {intset::insert(1), intset::insert(2),
                                      intset::del(1),    intset::del(2),
                                      intset::member(1), intset::member(2)};
  const std::vector<IntSetAdt::State> states = {{}, {1}, {2}, {1, 2}};
  for (const auto& s : states) {
    for (const auto& p : ops) {
      for (const auto& q : ops) {
        if (IntSetAdt::static_commutes(p, q)) {
          EXPECT_TRUE(forward_commutes<IntSetAdt>(s, p, q))
              << to_string(p) << " vs " << to_string(q) << " at "
              << IntSetAdt::describe(s);
        }
      }
    }
  }
}

}  // namespace
}  // namespace argus
