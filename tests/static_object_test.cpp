// StaticAtomicObject protocol tests: timestamp-order serialization,
// waiting on tentative smaller timestamps, suffix-invalidation aborts,
// and the §4.2.3 claims (readers never abort; late writers abort).
#include <gtest/gtest.h>

#include "check/atomicity.h"
#include "core/runtime.h"
#include "hist/wellformed.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/int_set.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

TEST(StaticObject, SerialUseWorks) {
  Runtime rt;
  auto set = rt.create_static<IntSetAdt>("s");
  auto t1 = rt.begin();
  EXPECT_EQ(set->invoke(*t1, intset::insert(3)), ok());
  rt.commit(t1);
  auto t2 = rt.begin();
  EXPECT_EQ(set->invoke(*t2, intset::member(3)), Value{true});
  rt.commit(t2);
  ASSERT_TRUE(set->committed_state().has_value());
  EXPECT_TRUE(set->committed_state()->contains(3));
}

TEST(StaticObject, HistoryIsStaticWellFormedAndStaticAtomic) {
  Runtime rt;
  auto set = rt.create_static<IntSetAdt>("s");
  auto t1 = rt.begin();
  set->invoke(*t1, intset::insert(3));
  rt.commit(t1);
  auto t2 = rt.begin();
  set->invoke(*t2, intset::member(3));
  rt.commit(t2);

  const History h = rt.history();
  EXPECT_TRUE(check_well_formed_static(h).ok())
      << check_well_formed_static(h).summary();
  const auto verdict = check_static_atomic(rt.system(), h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(StaticObject, ReaderBelowWriterSeesOldVersion) {
  // The multi-version advantage: a reader whose timestamp precedes a
  // later writer's reads the old state instead of aborting. t_old begins
  // (drawing a smaller timestamp) but reads only after t_new commits.
  Runtime rt;
  auto set = rt.create_static<IntSetAdt>("s");
  auto t_old = rt.begin();  // smaller timestamp
  auto t_new = rt.begin();
  set->invoke(*t_new, intset::insert(3));
  rt.commit(t_new);
  // t_old (ts below t_new) must see the set *without* 3.
  EXPECT_EQ(set->invoke(*t_old, intset::member(3)), Value{false});
  rt.commit(t_old);

  const auto verdict = check_static_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(StaticObject, LateWriterInvalidatingReadAborts) {
  // Reed's abort case, generalized: t_old would insert below t_new's
  // already-executed member(3)=false, changing its result.
  Runtime rt;
  auto set = rt.create_static<IntSetAdt>("s");
  auto t_old = rt.begin();
  auto t_new = rt.begin();
  EXPECT_EQ(set->invoke(*t_new, intset::member(3)), Value{false});
  rt.commit(t_new);
  try {
    set->invoke(*t_old, intset::insert(3));
    FAIL() << "expected timestamp-order abort";
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kTimestampOrder);
    rt.abort(t_old);
  }
}

TEST(StaticObject, LateWriterNotInvalidatingProceeds) {
  // t_old inserts 4 below t_new's member(3): the suffix result is
  // unaffected, so the insert is admitted below t_new.
  Runtime rt;
  auto set = rt.create_static<IntSetAdt>("s");
  auto t_old = rt.begin();
  auto t_new = rt.begin();
  EXPECT_EQ(set->invoke(*t_new, intset::member(3)), Value{false});
  rt.commit(t_new);
  EXPECT_EQ(set->invoke(*t_old, intset::insert(4)), ok());
  rt.commit(t_old);

  const auto verdict = check_static_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(StaticObject, OperationWaitsOnTentativeBelow) {
  // t_new's operation must wait while t_old (smaller ts) has a tentative
  // operation, then sees its committed effect.
  Runtime rt;
  auto set = rt.create_static<IntSetAdt>("s");
  auto t_old = rt.begin();
  auto t_new = rt.begin();
  set->invoke(*t_old, intset::insert(3));  // tentative below t_new
  auto blocked = expect_blocks([&] {
    EXPECT_EQ(set->invoke(*t_new, intset::member(3)), Value{true});
    rt.commit(t_new);
  });
  rt.commit(t_old);
  join_within(blocked);
}

TEST(StaticObject, AbortOfTentativeUnblocksWithOldState) {
  Runtime rt;
  auto set = rt.create_static<IntSetAdt>("s");
  auto t_old = rt.begin();
  auto t_new = rt.begin();
  set->invoke(*t_old, intset::insert(3));
  auto blocked = expect_blocks([&] {
    EXPECT_EQ(set->invoke(*t_new, intset::member(3)), Value{false});
    rt.commit(t_new);
  });
  rt.abort(t_old);
  join_within(blocked);
}

TEST(StaticObject, ReadOnlyTransactionsNeverAbort) {
  // §4.2.3: "read-only activities are never forced to abort". Pound the
  // object with interleaved writers and late readers.
  Runtime rt;
  auto acct = rt.create_static<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(100));
  rt.commit(setup);

  for (int round = 0; round < 20; ++round) {
    auto reader = rt.begin_read_only();
    auto writer = rt.begin();
    acct->invoke(*writer, account::deposit(1));
    rt.commit(writer);
    // Reader's timestamp precedes the writer's op; multi-version replay
    // serves the old balance without aborting.
    EXPECT_EQ(acct->invoke(*reader, account::balance()),
              Value{100 + round});
    rt.commit(reader);
  }
  const auto stats = rt.tm().stats();
  EXPECT_EQ(stats.aborted, 0u);
}

TEST(StaticObject, OwnOpsVisibleAtOwnTimestamp) {
  Runtime rt;
  auto acct = rt.create_static<BankAccountAdt>("a");
  auto t = rt.begin();
  acct->invoke(*t, account::deposit(10));
  EXPECT_EQ(acct->invoke(*t, account::balance()), Value{10});
  acct->invoke(*t, account::withdraw(4));
  EXPECT_EQ(acct->invoke(*t, account::balance()), Value{6});
  rt.commit(t);
}

TEST(StaticObject, AbortedOpsRemovedFromLog) {
  Runtime rt;
  auto acct = rt.create_static<BankAccountAdt>("a");
  auto t1 = rt.begin();
  acct->invoke(*t1, account::deposit(10));
  rt.abort(t1);
  auto t2 = rt.begin();
  EXPECT_EQ(acct->invoke(*t2, account::balance()), Value{0});
  rt.commit(t2);
}

TEST(StaticObject, TimestampOrderEqualsSerializationOrder) {
  // Three transactions commit in reverse timestamp order; the final
  // state must reflect timestamp order (deposit before the withdraws).
  Runtime rt;
  auto acct = rt.create_static<BankAccountAdt>("a");
  auto t1 = rt.begin();  // ts1 < ts2 < ts3
  auto t2 = rt.begin();
  auto t3 = rt.begin();
  acct->invoke(*t1, account::deposit(10));
  rt.commit(t1);
  acct->invoke(*t2, account::withdraw(4));
  rt.commit(t2);
  acct->invoke(*t3, account::withdraw(6));
  rt.commit(t3);
  ASSERT_TRUE(acct->committed_state().has_value());
  EXPECT_EQ(*acct->committed_state(), 0);
  const auto verdict = check_static_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(StaticObject, ReadOnlyTxnRejectsMutator) {
  Runtime rt;
  auto set = rt.create_static<IntSetAdt>("s");
  auto t = rt.begin_read_only();
  EXPECT_THROW(set->invoke(*t, intset::insert(1)), UsageError);
  rt.abort(t);
}

TEST(StaticObject, InitiateRecordedOncePerObject) {
  Runtime rt;
  auto set = rt.create_static<IntSetAdt>("s");
  auto t = rt.begin();
  set->invoke(*t, intset::insert(1));
  set->invoke(*t, intset::insert(2));
  rt.commit(t);
  int initiates = 0;
  const History h = rt.history();
  for (const Event& e : h.events()) {
    if (e.kind == EventKind::kInitiate) ++initiates;
  }
  EXPECT_EQ(initiates, 1);
}

}  // namespace
}  // namespace argus
