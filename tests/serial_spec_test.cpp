// Serial acceptability (§3's "acceptable" judgement): replaying recorded
// event sequences through sequential specifications, including
// nondeterministic ones.
#include <gtest/gtest.h>

#include "spec/adts/bank_account.h"
#include "spec/adts/registry.h"
#include "spec/serial.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

TEST(SerialAcceptable, EmptyHistory) {
  auto spec = make_spec("int_set");
  EXPECT_TRUE(serial_acceptable(*spec, History{}));
}

// §3's acceptable serial sequence for the set: insert(3) ok, member(3)
// true, with commits interspersed.
TEST(SerialAcceptable, PaperSetSequenceAccepted) {
  auto spec = make_spec("int_set");
  const History h = hist({
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      commit(X, B),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{true}),
      commit(X, A),
  });
  EXPECT_TRUE(serial_acceptable(*spec, h));
}

// §3's unacceptable sequence: member(2) returns true on an initially
// empty set.
TEST(SerialAcceptable, PaperSetSequenceRejected) {
  auto spec = make_spec("int_set");
  const History h = hist({
      invoke(X, A, op("member", 2)),
      respond(X, A, Value{true}),
      commit(X, A),
  });
  EXPECT_FALSE(serial_acceptable(*spec, h));
}

TEST(SerialAcceptable, WrongResultRejected) {
  auto spec = make_spec("bank_account");
  const History h = hist({
      invoke(X, A, op("deposit", 5)),
      respond(X, A, ok()),
      invoke(X, A, op("balance")),
      respond(X, A, Value{6}),  // should be 5
  });
  EXPECT_FALSE(serial_acceptable(*spec, h));
}

TEST(SerialAcceptable, AbnormalTerminationAccepted) {
  auto spec = make_spec("bank_account");
  const History h = hist({
      invoke(X, A, op("withdraw", 5)),
      respond(X, A, Value{kInsufficientFunds}),
  });
  EXPECT_TRUE(serial_acceptable(*spec, h));
}

TEST(SerialAcceptable, DisabledOperationRejected) {
  auto spec = make_spec("fifo_queue");
  const History h = hist({
      invoke(X, A, op("dequeue")),
      respond(X, A, Value{1}),
  });
  EXPECT_FALSE(serial_acceptable(*spec, h));
}

TEST(SerialAcceptable, PendingInvocationImposesNoConstraint) {
  auto spec = make_spec("fifo_queue");
  const History h = hist({
      invoke(X, A, op("dequeue")),  // never terminates
  });
  EXPECT_TRUE(serial_acceptable(*spec, h));
}

TEST(SerialAcceptable, ResponseWithoutInvocationRejected) {
  auto spec = make_spec("int_set");
  const History h = hist({respond(X, A, ok())});
  EXPECT_FALSE(serial_acceptable(*spec, h));
}

TEST(SerialAcceptable, CommitAbortInitiateIgnored) {
  auto spec = make_spec("int_set");
  const History h = hist({
      initiate(X, A, 1),
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      abort(X, B),
      commit(X, A),
  });
  EXPECT_TRUE(serial_acceptable(*spec, h));
}

// Nondeterminism: the recorded result selects the branch.
TEST(SerialAcceptable, BagRemoveFollowsRecordedResult) {
  auto spec = make_spec("bag");
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      invoke(X, A, op("insert", 2)),
      respond(X, A, ok()),
      invoke(X, A, op("remove")),
      respond(X, A, Value{2}),  // chose 2
      invoke(X, A, op("remove")),
      respond(X, A, Value{1}),  // then 1
  });
  EXPECT_TRUE(serial_acceptable(*spec, h));
}

TEST(SerialAcceptable, BagRemoveImpossibleResultRejected) {
  auto spec = make_spec("bag");
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      invoke(X, A, op("remove")),
      respond(X, A, Value{7}),  // 7 was never inserted
  });
  EXPECT_FALSE(serial_acceptable(*spec, h));
}

TEST(SerialAcceptable, BagBranchingStateTrackedCorrectly) {
  // Insert {1,1,2}; remove -> 1; size must then be 2 regardless of which
  // instance was removed (states reconverge).
  auto spec = make_spec("bag");
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      invoke(X, A, op("insert", 2)),
      respond(X, A, ok()),
      invoke(X, A, op("remove")),
      respond(X, A, Value{1}),
      invoke(X, A, op("size")),
      respond(X, A, Value{2}),
  });
  EXPECT_TRUE(serial_acceptable(*spec, h));
}

TEST(ReplayStates, ReturnsReachableStates) {
  auto spec = make_spec("bag");
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      invoke(X, A, op("insert", 2)),
      respond(X, A, ok()),
      invoke(X, A, op("remove")),
      respond(X, A, Value{1}),
  });
  auto init = spec->initial_state();
  const auto states = replay_states(*init, h);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states.front()->describe(), "{2}");
}

TEST(ReplayStates, EmptyOnContradiction) {
  auto spec = make_spec("counter");
  const History h = hist({
      invoke(Y, A, op("increment")),
      respond(Y, A, Value{5}),  // impossible from 0
  });
  auto init = spec->initial_state();
  EXPECT_TRUE(replay_states(*init, h).empty());
}

TEST(SerialAcceptableFrom, StartsFromGivenState) {
  auto spec = make_spec("counter");
  auto s0 = spec->initial_state();
  auto advanced = s0->step(op("increment"));
  ASSERT_EQ(advanced.size(), 1u);
  const History h = hist({
      invoke(Y, A, op("increment")),
      respond(Y, A, Value{2}),  // valid from state 1, not from 0
  });
  EXPECT_TRUE(serial_acceptable_from(*advanced.front().state, h));
  EXPECT_FALSE(serial_acceptable_from(*s0, h));
}

}  // namespace
}  // namespace argus
