// Property tests: the bridge between implementation and theory. Random
// concurrent workloads run against each protocol with history recording
// on; the captured history must satisfy the protocol's local atomicity
// property *as formally defined* (and its alphabet's well-formedness
// rules). This is Theorem 1/4/5 exercised end-to-end.
#include <gtest/gtest.h>

#include <thread>

#include "check/atomicity.h"
#include "check/random_history.h"
#include "hist/wellformed.h"
#include "sched/factory.h"
#include "sim/scenarios.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/fifo_queue.h"
#include "spec/adts/int_set.h"
#include "spec/adts/kv_store.h"
#include "test_util.h"

namespace argus {
namespace {

Operation random_read_only_op(const std::string& adt, SplitMix64& rng) {
  if (adt == "int_set") return op("member", rng.range(0, 3));
  if (adt == "bank_account") return op("balance");
  if (adt == "kv_store") {
    return rng.chance(1, 2) ? op("get", rng.range(0, 2))
                            : op("contains", rng.range(0, 2));
  }
  return op("balance");
}

struct RunResult {
  History history;
  SystemSpec system;
  std::unordered_set<ActivityId> read_only;
};

/// Runs a small concurrent workload (3 threads x 2 transactions) against
/// one object under `protocol`, with random operations, occasional user
/// aborts, and (for snapshot protocols) occasional read-only
/// transactions. Small on purpose: the checkers enumerate activity
/// orders.
template <AdtTraits A>
RunResult run_property_workload(Protocol protocol, const std::string& adt,
                                std::uint64_t seed,
                                bool with_faults = false) {
  Runtime rt(/*record_history=*/true);
  auto obj = make_object<A>(rt, protocol, "x");
  if (auto base = std::dynamic_pointer_cast<ObjectBase>(obj)) {
    base->set_wait_timeout(std::chrono::milliseconds(1000));
  }
  if (with_faults) {
    // The stable log misbehaves: transient force failures (retried, and
    // sometimes exhausted into io-error aborts) and torn batch tails.
    // Faults may abort transactions, never corrupt the history — the
    // property checks below are identical either way.
    FaultPlan plan;
    plan.seed = seed * 2654435761ULL + static_cast<std::uint64_t>(protocol);
    plan.force_fail_permille = 250;
    plan.force_max_retries = 1;
    plan.force_retry_backoff_us = 5;
    plan.torn_batch_permille = 300;
    rt.set_fault_injector(std::make_shared<FaultInjector>(plan));
  }

  RunResult out;
  std::mutex ro_mu;

  auto worker = [&](int index) {
    SplitMix64 rng(seed * 1000003ULL + static_cast<std::uint64_t>(index));
    for (int k = 0; k < 2; ++k) {
      const bool read_only =
          supports_snapshot_reads(protocol) && rng.chance(1, 3);
      auto txn = read_only ? rt.begin_read_only() : rt.begin();
      if (read_only) {
        const std::scoped_lock lock(ro_mu);
        out.read_only.insert(txn->id());
      }
      try {
        const int ops = static_cast<int>(rng.range(1, 3));
        for (int i = 0; i < ops; ++i) {
          const Operation o = read_only ? random_read_only_op(adt, rng)
                                        : random_operation(adt, rng);
          obj->invoke(*txn, o);
          // Hold the transaction open briefly so workers genuinely
          // overlap — otherwise each finishes before the next begins and
          // the property is tested only on near-serial histories.
          std::this_thread::sleep_for(
              std::chrono::microseconds(rng.range(0, 300)));
        }
        if (!read_only && rng.chance(1, 5)) {
          rt.abort(txn);
        } else {
          rt.commit(txn);
        }
      } catch (const TransactionAborted&) {
        rt.abort(txn);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  out.history = rt.history();
  out.system.add_object(obj->id(), adt);
  return out;
}

template <AdtTraits A>
void check_protocol_property(Protocol protocol, const std::string& adt,
                             std::uint64_t seed, bool with_faults = false) {
  const RunResult run =
      run_property_workload<A>(protocol, adt, seed, with_faults);
  const History& h = run.history;

  switch (protocol) {
    case Protocol::kDynamic:
    case Protocol::kTwoPhase:
    case Protocol::kCommutativity: {
      const auto wf = check_well_formed(h);
      ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
      const auto verdict = check_dynamic_atomic(run.system, h);
      EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
      break;
    }
    case Protocol::kStatic:
    case Protocol::kTimestamp: {
      const auto wf = check_well_formed_static(h);
      ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
      const auto verdict = check_static_atomic(run.system, h);
      EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
      break;
    }
    case Protocol::kHybrid:
    case Protocol::kOcc:
    case Protocol::kMvcc: {
      // OCC/MVCC updates serialize at commit timestamps (validation runs
      // at the pipeline turn) and MVCC reads at initiation snapshots —
      // exactly the hybrid atomicity property.
      const auto wf = check_well_formed_hybrid(h, run.read_only);
      ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
      const auto verdict = check_hybrid_atomic(run.system, h);
      EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
      break;
    }
  }
}

class ProtocolProperty
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {};

TEST_P(ProtocolProperty, IntSetHistoriesSatisfyLocalProperty) {
  const auto& [protocol, seed] = GetParam();
  check_protocol_property<IntSetAdt>(protocol, "int_set", seed);
}

TEST_P(ProtocolProperty, BankAccountHistoriesSatisfyLocalProperty) {
  const auto& [protocol, seed] = GetParam();
  check_protocol_property<BankAccountAdt>(protocol, "bank_account", seed + 77);
}

TEST_P(ProtocolProperty, KVStoreHistoriesSatisfyLocalProperty) {
  const auto& [protocol, seed] = GetParam();
  check_protocol_property<KVStoreAdt>(protocol, "kv_store", seed + 154);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolProperty,
    ::testing::Combine(::testing::Values(Protocol::kDynamic, Protocol::kStatic,
                                         Protocol::kHybrid,
                                         Protocol::kTwoPhase,
                                         Protocol::kCommutativity,
                                         Protocol::kTimestamp, Protocol::kOcc,
                                         Protocol::kMvcc),
                       ::testing::Range<std::uint64_t>(1, 9)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The same property sweep under injected stable-log faults: force
// failures and torn tails shrink the committed set but must leave every
// checker verdict unchanged — a fault is just another way to abort.
class ProtocolPropertyUnderFaults
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {};

TEST_P(ProtocolPropertyUnderFaults, IntSetHistoriesStillSatisfyProperty) {
  const auto& [protocol, seed] = GetParam();
  check_protocol_property<IntSetAdt>(protocol, "int_set", seed,
                                     /*with_faults=*/true);
}

TEST_P(ProtocolPropertyUnderFaults, BankAccountHistoriesStillSatisfyProperty) {
  const auto& [protocol, seed] = GetParam();
  check_protocol_property<BankAccountAdt>(protocol, "bank_account", seed + 77,
                                          /*with_faults=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolPropertyUnderFaults,
    ::testing::Combine(::testing::Values(Protocol::kDynamic, Protocol::kStatic,
                                         Protocol::kHybrid,
                                         Protocol::kTwoPhase,
                                         Protocol::kCommutativity,
                                         Protocol::kTimestamp, Protocol::kOcc,
                                         Protocol::kMvcc),
                       ::testing::Range<std::uint64_t>(1, 5)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Hybrid queue histories, separately (type-specific object).
class HybridQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridQueueProperty, HistoriesAreHybridAtomic) {
  const std::uint64_t seed = GetParam();
  Runtime rt(/*record_history=*/true);
  auto q = rt.create_hybrid_queue("q");
  q->set_wait_timeout(std::chrono::milliseconds(500));

  // Seed items so dequeues rarely block at the tail.
  {
    auto t = rt.begin();
    for (int i = 0; i < 8; ++i) q->invoke(*t, fifo::enqueue(100 + i));
    rt.commit(t);
  }

  std::mutex ro_mu;
  std::unordered_set<ActivityId> read_only;
  auto worker = [&](int index) {
    SplitMix64 rng(seed * 7919ULL + static_cast<std::uint64_t>(index));
    for (int k = 0; k < 2; ++k) {
      const bool ro = rng.chance(1, 4);
      auto txn = ro ? rt.begin_read_only() : rt.begin();
      if (ro) {
        const std::scoped_lock lock(ro_mu);
        read_only.insert(txn->id());
      }
      try {
        if (ro) {
          q->invoke(*txn, fifo::size());
        } else {
          const int ops = static_cast<int>(rng.range(1, 2));
          for (int i = 0; i < ops; ++i) {
            if (rng.chance(2, 3)) {
              q->invoke(*txn, fifo::enqueue(rng.range(0, 9)));
            } else {
              q->invoke(*txn, fifo::dequeue());
            }
          }
        }
        if (!ro && rng.chance(1, 5)) {
          rt.abort(txn);
        } else {
          rt.commit(txn);
        }
      } catch (const TransactionAborted&) {
        rt.abort(txn);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  const History h = rt.history();
  const auto wf = check_well_formed_hybrid(h, read_only);
  ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
  const auto verdict = check_hybrid_atomic(rt.system(), h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridQueueProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// Recovery property: random workload, crash at a random point, recover,
// and the surviving state equals a replay of exactly the committed
// transactions.
class RecoveryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryProperty, RecoveredStateMatchesCommittedLog) {
  const std::uint64_t seed = GetParam();
  Runtime rt(/*record_history=*/false);
  auto acct = rt.create_dynamic<BankAccountAdt>("a");

  SplitMix64 rng(seed);
  std::int64_t expected = 0;
  for (int i = 0; i < 20; ++i) {
    auto t = rt.begin();
    const std::int64_t amount = rng.range(1, 9);
    const bool deposit = rng.chance(2, 3);
    const Operation o =
        deposit ? account::deposit(amount) : account::withdraw(amount);
    const Value result = acct->invoke(*t, o);
    if (rng.chance(1, 4)) {
      rt.abort(t);
      continue;
    }
    rt.commit(t);
    if (deposit) {
      expected += amount;
    } else if (result == ok()) {
      expected -= amount;
    }
  }

  rt.crash();
  rt.recover();
  EXPECT_EQ(acct->committed_state(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace argus
