// Unit tests for the history layer: events, projections, perm, precedes,
// equivalence, serial order, timestamps. The §2/§3/§4.1 definitions.
#include <gtest/gtest.h>

#include "hist/history.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;
using intseq = std::vector<ActivityId>;

TEST(Event, Printing) {
  EXPECT_EQ(to_string(invoke(X, A, op("insert", 3))), "<insert(3),x,a>");
  EXPECT_EQ(to_string(respond(X, A, Value{true})), "<true,x,a>");
  EXPECT_EQ(to_string(respond(X, A, ok())), "<ok,x,a>");
  EXPECT_EQ(to_string(commit(X, A)), "<commit,x,a>");
  EXPECT_EQ(to_string(commit_at(X, A, 5)), "<commit(5),x,a>");
  EXPECT_EQ(to_string(abort(X, C)), "<abort,x,c>");
  EXPECT_EQ(to_string(initiate(Y, B, 2)), "<initiate(2),y,b>");
}

TEST(Event, TimestampPresence) {
  EXPECT_FALSE(commit(X, A).has_timestamp());
  EXPECT_TRUE(commit_at(X, A, 3).has_timestamp());
  EXPECT_TRUE(initiate(X, A, 1).has_timestamp());
}

// The example computation from §2: a and b interleave on the set x.
History section2_example() {
  return hist({
      invoke(X, A, op("insert", 3)),
      invoke(X, B, op("member", 3)),
      respond(X, A, ok()),
      respond(X, B, Value{false}),
      invoke(X, B, op("insert", 4)),
      respond(X, B, ok()),
      commit(X, B),
      commit(X, A),
  });
}

TEST(History, ProjectObject) {
  History h = section2_example();
  h.append(invoke(Y, A, op("increment")));
  h.append(respond(Y, A, Value{1}));
  EXPECT_EQ(h.project_object(X), section2_example());
  EXPECT_EQ(h.project_object(Y).size(), 2u);
}

TEST(History, ProjectActivityPreservesOrder) {
  const History h = section2_example();
  const History hb = h.project_activity(B);
  ASSERT_EQ(hb.size(), 5u);
  EXPECT_EQ(hb.at(0).operation, op("member", 3));
  EXPECT_EQ(hb.at(1).result, Value{false});
  EXPECT_EQ(hb.at(4).kind, EventKind::kCommit);
}

TEST(History, PermKeepsOnlyCommitted) {
  History h = section2_example();
  h.append(invoke(X, C, op("delete", 3)));
  h.append(respond(X, C, ok()));
  h.append(abort(X, C));
  const History p = h.perm();
  EXPECT_EQ(p, section2_example());  // c's events vanish
}

TEST(History, PermDropsActiveActivities) {
  History h;
  h.append(invoke(X, A, op("insert", 1)));
  h.append(respond(X, A, ok()));
  // a never commits: perm is empty.
  EXPECT_TRUE(h.perm().empty());
}

TEST(History, CommittedAndAbortedSets) {
  History h = section2_example();
  h.append(abort(X, C));
  EXPECT_TRUE(h.committed().contains(A));
  EXPECT_TRUE(h.committed().contains(B));
  EXPECT_FALSE(h.committed().contains(C));
  EXPECT_TRUE(h.aborted().contains(C));
}

TEST(History, ActivitiesInFirstAppearanceOrder) {
  const History h = section2_example();
  EXPECT_EQ(h.activities(), (intseq{A, B}));
}

// §4.1's first precedes example: a commits, then b invokes and the
// invocation terminates — precedes(h) is empty because b's response does
// not come after a's commit... (paper: the first sequence has an empty
// precedes, the second contains <a,b>).
TEST(Precedes, EmptyWhenResponsePrecedesCommit) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      invoke(X, B, op("member", 3)),
      respond(X, A, ok()),
      respond(X, B, Value{false}),
      commit(X, A),
      commit(X, B),
  });
  EXPECT_TRUE(h.precedes().empty());
}

TEST(Precedes, PairWhenResponseFollowsCommit) {
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit(X, B),
  });
  const auto rel = h.precedes();
  EXPECT_TRUE(rel.contains(A, B));
  EXPECT_FALSE(rel.contains(B, A));
  EXPECT_EQ(rel.size(), 1u);
}

TEST(Precedes, InvocationBeforeCommitDoesNotCount) {
  // b invokes before a's commit but terminates after: pair exists (the
  // definition is about termination).
  const History h = hist({
      invoke(X, B, op("member", 3)),
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      respond(X, B, Value{false}),
  });
  EXPECT_TRUE(h.precedes().contains(A, B));
}

TEST(Precedes, ConsistencyWithOrders) {
  PrecedesRelation rel;
  rel.add(B, C);
  EXPECT_TRUE(rel.consistent_with({A, B, C}));
  EXPECT_TRUE(rel.consistent_with({B, A, C}));
  EXPECT_TRUE(rel.consistent_with({B, C, A}));
  EXPECT_FALSE(rel.consistent_with({C, B, A}));
  EXPECT_FALSE(rel.consistent_with({A, C, B}));
}

TEST(Precedes, LinearExtensions) {
  PrecedesRelation rel;
  rel.add(B, C);
  const auto orders = rel.linear_extensions({A, B, C});
  EXPECT_EQ(orders.size(), 3u);  // abc, bac, bca
  for (const auto& order : orders) {
    EXPECT_TRUE(rel.consistent_with(order));
  }
}

TEST(Precedes, LinearExtensionsUnconstrained) {
  const PrecedesRelation rel;
  EXPECT_EQ(rel.linear_extensions({A, B, C}).size(), 6u);
}

TEST(Precedes, RestrictedTo) {
  PrecedesRelation rel;
  rel.add(A, B);
  rel.add(B, C);
  const auto sub = rel.restricted_to({A, B});
  EXPECT_TRUE(sub.contains(A, B));
  EXPECT_FALSE(sub.contains(B, C));
  EXPECT_EQ(sub.size(), 1u);
}

TEST(Precedes, Acyclic) {
  PrecedesRelation rel;
  rel.add(A, B);
  rel.add(B, C);
  EXPECT_TRUE(rel.acyclic({A, B, C}));
  rel.add(C, A);
  EXPECT_FALSE(rel.acyclic({A, B, C}));
}

TEST(Precedes, SelfPairsIgnored) {
  PrecedesRelation rel;
  rel.add(A, A);
  EXPECT_TRUE(rel.empty());
}

TEST(History, EquivalenceSameViews) {
  const History h = section2_example();
  // The serial sequence with a first is equivalent to h.
  const History serial = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{false}),
      invoke(X, B, op("insert", 4)),
      respond(X, B, ok()),
      commit(X, B),
  });
  EXPECT_TRUE(h.equivalent(serial));
  EXPECT_TRUE(serial.equivalent(h));
}

TEST(History, EquivalenceRejectsDifferentResults) {
  History h = section2_example();
  History k = section2_example();
  // Flip b's member result.
  History k2;
  for (const Event& e : k.events()) {
    Event copy = e;
    if (copy.kind == EventKind::kRespond && copy.activity == B &&
        copy.result == Value{false}) {
      copy.result = Value{true};
    }
    k2.append(copy);
  }
  EXPECT_FALSE(h.equivalent(k2));
}

TEST(History, EquivalenceRequiresSameActivities) {
  const History h = section2_example();
  EXPECT_FALSE(h.equivalent(h.project_activity(A)));
}

TEST(History, SerialDetection) {
  const History interleaved = section2_example();
  EXPECT_FALSE(interleaved.is_serial());
  const History serial = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit(X, B),
  });
  EXPECT_TRUE(serial.is_serial());
  EXPECT_EQ(serial.serial_order(), (intseq{A, B}));
  EXPECT_EQ(interleaved.serial_order(), std::nullopt);
}

TEST(History, SerialRejectsResumedActivity) {
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      invoke(X, B, op("insert", 2)),
      respond(X, B, ok()),
      commit(X, A),  // a resumes after b ran: not serial
  });
  EXPECT_FALSE(h.is_serial());
}

TEST(History, TimestampExtraction) {
  const History h = hist({
      initiate(X, A, 7),
      invoke(X, A, op("member", 1)),
      respond(X, A, Value{false}),
      commit(X, A),
      commit_at(X, B, 3),
  });
  EXPECT_EQ(h.timestamp_of(A), 7u);
  EXPECT_EQ(h.timestamp_of(B), 3u);
  EXPECT_EQ(h.timestamp_of(C), std::nullopt);
  EXPECT_EQ(h.timestamp_order(), (intseq{B, A}));
}

TEST(History, UpdatesProjection) {
  History h = section2_example();
  h.append(initiate(X, R, 9));
  h.append(invoke(X, R, op("member", 3)));
  h.append(respond(X, R, Value{true}));
  const History u = h.updates({R});
  EXPECT_EQ(u, section2_example());
}

TEST(History, ThenConcatenates) {
  const History h1 = hist({invoke(X, A, op("insert", 1))});
  const History h2 = hist({respond(X, A, ok())});
  const History joined = h1.then(h2);
  EXPECT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined.at(1).kind, EventKind::kRespond);
}

TEST(History, ToStringMatchesPaperNotation) {
  const History h = hist({invoke(X, A, op("insert", 3)), respond(X, A, ok())});
  EXPECT_EQ(h.to_string(), "<insert(3),x,a>\n<ok,x,a>\n");
}

}  // namespace
}  // namespace argus
