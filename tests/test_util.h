// Shared helpers for the test suite: terse history construction in the
// paper's notation, and utilities for running transactions on separate
// threads with step synchronization.
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "hist/history.h"

namespace argus::testutil {

// The paper's activity letters.
inline constexpr ActivityId A{0};
inline constexpr ActivityId B{1};
inline constexpr ActivityId C{2};
inline constexpr ActivityId R{17};  // read-only activities r, s, t
inline constexpr ActivityId S{18};
inline constexpr ActivityId T{19};

// Objects x, y.
inline constexpr ObjectId X{0};
inline constexpr ObjectId Y{1};

/// Builds a history from an initializer list of events.
inline History hist(std::vector<Event> events) {
  return History(std::move(events));
}

/// Runs `f` on another thread and asserts it does not finish within
/// `millis` — the standard idiom for "this invocation blocks". Returns a
/// future the caller must eventually resolve (by unblocking f) and join
/// via get().
template <typename F>
std::future<void> expect_blocks(F f, int millis = 100) {
  auto fut = std::async(std::launch::async, std::move(f));
  if (fut.wait_for(std::chrono::milliseconds(millis)) ==
      std::future_status::ready) {
    throw std::runtime_error("expected the call to block, but it finished");
  }
  return fut;
}

/// Waits for a future with a timeout, failing the test on deadline.
inline void join_within(std::future<void>& fut, int millis = 5000) {
  if (fut.wait_for(std::chrono::milliseconds(millis)) !=
      std::future_status::ready) {
    throw std::runtime_error("future did not complete in time");
  }
  fut.get();
}

}  // namespace argus::testutil
