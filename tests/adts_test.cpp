// Sequential-specification tests for every ADT: step semantics,
// enabledness, read-only classification, and the state-independent
// conflict tables used by the scheduler-model baselines.
#include <gtest/gtest.h>

#include "common/errors.h"
#include "spec/adts/bag.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/counter.h"
#include "spec/adts/fifo_queue.h"
#include "spec/adts/int_set.h"
#include "spec/adts/kv_store.h"
#include "spec/adts/registry.h"
#include "spec/adts/rw_register.h"

namespace argus {
namespace {

template <typename A>
std::pair<Value, typename A::State> step1(const typename A::State& s,
                                          const Operation& o) {
  auto outcomes = A::step(s, o);
  EXPECT_EQ(outcomes.size(), 1u) << "expected deterministic op " << to_string(o);
  return outcomes.front();
}

// ---------------------------------------------------------------- IntSet

TEST(IntSet, InsertMemberDelete) {
  auto s = IntSetAdt::initial();
  auto [r1, s1] = step1<IntSetAdt>(s, intset::insert(3));
  EXPECT_EQ(r1, ok());
  auto [r2, s2] = step1<IntSetAdt>(s1, intset::member(3));
  EXPECT_EQ(r2, Value{true});
  auto [r3, s3] = step1<IntSetAdt>(s2, intset::del(3));
  EXPECT_EQ(r3, ok());
  auto [r4, s4] = step1<IntSetAdt>(s3, intset::member(3));
  EXPECT_EQ(r4, Value{false});
}

TEST(IntSet, InsertIdempotent) {
  auto s = IntSetAdt::initial();
  auto [r1, s1] = step1<IntSetAdt>(s, intset::insert(3));
  auto [r2, s2] = step1<IntSetAdt>(s1, intset::insert(3));
  EXPECT_EQ(s1, s2);
}

TEST(IntSet, DeleteAbsentOk) {
  auto s = IntSetAdt::initial();
  auto [r, s1] = step1<IntSetAdt>(s, intset::del(42));
  EXPECT_EQ(r, ok());
  EXPECT_EQ(s1, s);
}

TEST(IntSet, MemberIsReadOnly) {
  EXPECT_TRUE(IntSetAdt::is_read_only(intset::member(1)));
  EXPECT_FALSE(IntSetAdt::is_read_only(intset::insert(1)));
  EXPECT_FALSE(IntSetAdt::is_read_only(intset::del(1)));
}

TEST(IntSet, MalformedOpsDisabled) {
  auto s = IntSetAdt::initial();
  EXPECT_TRUE(IntSetAdt::step(s, op("insert")).empty());
  EXPECT_TRUE(IntSetAdt::step(s, op("insert", Value{true})).empty());
  EXPECT_TRUE(IntSetAdt::step(s, op("frobnicate", 1)).empty());
}

TEST(IntSet, StaticCommutes) {
  // Distinct elements always commute.
  EXPECT_TRUE(IntSetAdt::static_commutes(intset::insert(1), intset::del(2)));
  EXPECT_TRUE(IntSetAdt::static_commutes(intset::member(1), intset::insert(2)));
  // Same element: idempotent pairs and read pairs commute.
  EXPECT_TRUE(IntSetAdt::static_commutes(intset::insert(1), intset::insert(1)));
  EXPECT_TRUE(IntSetAdt::static_commutes(intset::del(1), intset::del(1)));
  EXPECT_TRUE(IntSetAdt::static_commutes(intset::member(1), intset::member(1)));
  // Same element: mutator vs observer and insert vs delete conflict.
  EXPECT_FALSE(IntSetAdt::static_commutes(intset::insert(1), intset::del(1)));
  EXPECT_FALSE(IntSetAdt::static_commutes(intset::member(1), intset::insert(1)));
  EXPECT_FALSE(IntSetAdt::static_commutes(intset::member(1), intset::del(1)));
}

TEST(IntSet, Describe) {
  auto s = IntSetAdt::initial();
  s.insert(1);
  s.insert(3);
  EXPECT_EQ(IntSetAdt::describe(s), "{1,3}");
}

// --------------------------------------------------------------- Counter

TEST(Counter, IncrementReturnsNewValue) {
  auto s = CounterAdt::initial();
  auto [r1, s1] = step1<CounterAdt>(s, counter::increment());
  EXPECT_EQ(r1, Value{1});
  auto [r2, s2] = step1<CounterAdt>(s1, counter::increment());
  EXPECT_EQ(r2, Value{2});
  EXPECT_EQ(s2, 2);
}

TEST(Counter, NothingCommutes) {
  EXPECT_FALSE(
      CounterAdt::static_commutes(counter::increment(), counter::increment()));
}

TEST(Counter, MalformedDisabled) {
  EXPECT_TRUE(CounterAdt::step(0, op("increment", 1)).empty());
  EXPECT_TRUE(CounterAdt::step(0, op("decrement")).empty());
}

// ---------------------------------------------------------- BankAccount

TEST(BankAccount, DepositWithdrawBalance) {
  auto s = BankAccountAdt::initial();
  auto [r1, s1] = step1<BankAccountAdt>(s, account::deposit(10));
  EXPECT_EQ(r1, ok());
  auto [r2, s2] = step1<BankAccountAdt>(s1, account::withdraw(4));
  EXPECT_EQ(r2, ok());
  auto [r3, s3] = step1<BankAccountAdt>(s2, account::balance());
  EXPECT_EQ(r3, Value{6});
}

TEST(BankAccount, WithdrawInsufficientTerminatesAbnormally) {
  auto s = BankAccountAdt::initial();
  auto [r, s1] = step1<BankAccountAdt>(s, account::withdraw(1));
  EXPECT_EQ(r, Value{kInsufficientFunds});
  EXPECT_EQ(s1, 0);  // state unchanged
}

TEST(BankAccount, ExactBalanceWithdrawOk) {
  auto [r, s1] = step1<BankAccountAdt>(5, account::withdraw(5));
  EXPECT_EQ(r, ok());
  EXPECT_EQ(s1, 0);
}

TEST(BankAccount, NegativeAmountsDisabled) {
  EXPECT_TRUE(BankAccountAdt::step(0, op("deposit", -1)).empty());
  EXPECT_TRUE(BankAccountAdt::step(0, op("withdraw", -1)).empty());
}

TEST(BankAccount, StaticConflictTable) {
  // §5.1: deposits commute; withdraws conflict with withdraws and with
  // deposits (in *some* state the order matters).
  EXPECT_TRUE(
      BankAccountAdt::static_commutes(account::deposit(1), account::deposit(2)));
  EXPECT_FALSE(BankAccountAdt::static_commutes(account::withdraw(1),
                                               account::withdraw(2)));
  EXPECT_FALSE(
      BankAccountAdt::static_commutes(account::deposit(1), account::withdraw(2)));
  EXPECT_FALSE(
      BankAccountAdt::static_commutes(account::balance(), account::deposit(1)));
  EXPECT_TRUE(
      BankAccountAdt::static_commutes(account::balance(), account::balance()));
}

TEST(BankAccount, BalanceIsReadOnly) {
  EXPECT_TRUE(BankAccountAdt::is_read_only(account::balance()));
  EXPECT_FALSE(BankAccountAdt::is_read_only(account::deposit(1)));
  EXPECT_FALSE(BankAccountAdt::is_read_only(account::withdraw(1)));
}

// ------------------------------------------------------------ FifoQueue

TEST(FifoQueue, FifoOrder) {
  auto s = FifoQueueAdt::initial();
  auto [r1, s1] = step1<FifoQueueAdt>(s, fifo::enqueue(1));
  auto [r2, s2] = step1<FifoQueueAdt>(s1, fifo::enqueue(2));
  auto [r3, s3] = step1<FifoQueueAdt>(s2, fifo::dequeue());
  EXPECT_EQ(r3, Value{1});
  auto [r4, s4] = step1<FifoQueueAdt>(s3, fifo::dequeue());
  EXPECT_EQ(r4, Value{2});
  EXPECT_TRUE(s4.empty());
}

TEST(FifoQueue, DequeueOnEmptyDisabled) {
  EXPECT_TRUE(FifoQueueAdt::step({}, fifo::dequeue()).empty());
}

TEST(FifoQueue, SizeReadOnly) {
  auto [r, s1] = step1<FifoQueueAdt>({5, 6}, fifo::size());
  EXPECT_EQ(r, Value{2});
  EXPECT_TRUE(FifoQueueAdt::is_read_only(fifo::size()));
  EXPECT_FALSE(FifoQueueAdt::is_read_only(fifo::dequeue()));
}

TEST(FifoQueue, EnqueueCommutativityIsArgumentSensitive) {
  // §5.1: enqueue(1) does not commute with enqueue(2) — but it does
  // commute with enqueue(1).
  EXPECT_FALSE(FifoQueueAdt::static_commutes(fifo::enqueue(1), fifo::enqueue(2)));
  EXPECT_TRUE(FifoQueueAdt::static_commutes(fifo::enqueue(1), fifo::enqueue(1)));
  EXPECT_FALSE(FifoQueueAdt::static_commutes(fifo::enqueue(1), fifo::dequeue()));
  EXPECT_FALSE(FifoQueueAdt::static_commutes(fifo::dequeue(), fifo::dequeue()));
}

TEST(FifoQueue, Describe) {
  EXPECT_EQ(FifoQueueAdt::describe({1, 2}), "[1,2]");
  EXPECT_EQ(FifoQueueAdt::describe({}), "[]");
}

// -------------------------------------------------------------- KVStore

TEST(KVStore, PutGetRemove) {
  auto s = KVStoreAdt::initial();
  auto [r1, s1] = step1<KVStoreAdt>(s, kv::put(1, 10));
  auto [r2, s2] = step1<KVStoreAdt>(s1, kv::get(1));
  EXPECT_EQ(r2, Value{10});
  auto [r3, s3] = step1<KVStoreAdt>(s2, kv::remove(1));
  auto [r4, s4] = step1<KVStoreAdt>(s3, kv::get(1));
  EXPECT_EQ(r4, Value{"none"});
}

TEST(KVStore, ContainsAndOverwrite) {
  auto s = KVStoreAdt::initial();
  auto [r1, s1] = step1<KVStoreAdt>(s, kv::put(2, 5));
  auto [r2, s2] = step1<KVStoreAdt>(s1, kv::contains(2));
  EXPECT_EQ(r2, Value{true});
  auto [r3, s3] = step1<KVStoreAdt>(s2, kv::put(2, 7));
  auto [r4, s4] = step1<KVStoreAdt>(s3, kv::get(2));
  EXPECT_EQ(r4, Value{7});
}

TEST(KVStore, ConflictTableKeyDisjointness) {
  EXPECT_TRUE(KVStoreAdt::static_commutes(kv::put(1, 5), kv::put(2, 6)));
  EXPECT_TRUE(KVStoreAdt::static_commutes(kv::get(1), kv::remove(2)));
  EXPECT_FALSE(KVStoreAdt::static_commutes(kv::put(1, 5), kv::put(1, 6)));
  EXPECT_TRUE(KVStoreAdt::static_commutes(kv::put(1, 5), kv::put(1, 5)));
  EXPECT_TRUE(KVStoreAdt::static_commutes(kv::remove(1), kv::remove(1)));
  EXPECT_FALSE(KVStoreAdt::static_commutes(kv::get(1), kv::put(1, 5)));
  EXPECT_TRUE(KVStoreAdt::static_commutes(kv::get(1), kv::contains(1)));
}

TEST(KVStore, ReadOnlyClassification) {
  EXPECT_TRUE(KVStoreAdt::is_read_only(kv::get(1)));
  EXPECT_TRUE(KVStoreAdt::is_read_only(kv::contains(1)));
  EXPECT_FALSE(KVStoreAdt::is_read_only(kv::put(1, 1)));
  EXPECT_FALSE(KVStoreAdt::is_read_only(kv::remove(1)));
}

// ------------------------------------------------------------------ Bag

TEST(Bag, RemoveIsNondeterministic) {
  auto s = BagAdt::initial();
  auto [r1, s1] = step1<BagAdt>(s, bag::insert(1));
  auto [r2, s2] = step1<BagAdt>(s1, bag::insert(2));
  const auto outcomes = BagAdt::step(s2, bag::remove());
  ASSERT_EQ(outcomes.size(), 2u);  // may remove 1 or 2
  EXPECT_NE(outcomes[0].first, outcomes[1].first);
}

TEST(Bag, RemoveOnEmptyDisabled) {
  EXPECT_TRUE(BagAdt::step({}, bag::remove()).empty());
}

TEST(Bag, MultiplicityTracked) {
  auto s = BagAdt::initial();
  auto [r1, s1] = step1<BagAdt>(s, bag::insert(1));
  auto [r2, s2] = step1<BagAdt>(s1, bag::insert(1));
  const auto outcomes = BagAdt::step(s2, bag::remove());
  ASSERT_EQ(outcomes.size(), 1u);  // only one distinct element
  EXPECT_EQ(outcomes[0].first, Value{1});
  auto [r3, s3] = step1<BagAdt>(outcomes[0].second, bag::size());
  EXPECT_EQ(r3, Value{1});
}

TEST(Bag, SizeCountsMultiplicity) {
  auto s = BagAdt::initial();
  for (int i = 0; i < 3; ++i) {
    s = step1<BagAdt>(s, bag::insert(7)).second;
  }
  EXPECT_EQ(step1<BagAdt>(s, bag::size()).first, Value{3});
}

TEST(Bag, InsertsCommute) {
  EXPECT_TRUE(BagAdt::static_commutes(bag::insert(1), bag::insert(2)));
  EXPECT_FALSE(BagAdt::static_commutes(bag::insert(1), bag::remove()));
  EXPECT_FALSE(BagAdt::static_commutes(bag::remove(), bag::remove()));
  EXPECT_FALSE(BagAdt::static_commutes(bag::size(), bag::insert(1)));
}

TEST(Bag, Describe) {
  auto s = BagAdt::initial();
  s[1] = 2;
  s[3] = 1;
  EXPECT_EQ(BagAdt::describe(s), "{1,1,3}");
}

// ------------------------------------------------------------- Register

TEST(RWRegister, ReadWrite) {
  auto s = RWRegisterAdt::initial();
  EXPECT_EQ(step1<RWRegisterAdt>(s, rwreg::read()).first, Value{0});
  auto [r, s1] = step1<RWRegisterAdt>(s, rwreg::write(9));
  EXPECT_EQ(step1<RWRegisterAdt>(s1, rwreg::read()).first, Value{9});
}

TEST(RWRegister, ConflictTable) {
  EXPECT_TRUE(RWRegisterAdt::static_commutes(rwreg::read(), rwreg::read()));
  EXPECT_FALSE(RWRegisterAdt::static_commutes(rwreg::read(), rwreg::write(1)));
  EXPECT_FALSE(RWRegisterAdt::static_commutes(rwreg::write(1), rwreg::write(2)));
  EXPECT_TRUE(RWRegisterAdt::static_commutes(rwreg::write(1), rwreg::write(1)));
}

// -------------------------------------------------------------- Registry

TEST(Registry, AllSpecsConstructible) {
  for (const std::string& name : known_specs()) {
    auto spec = make_spec(name);
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(spec->type_name(), name);
    auto state = spec->initial_state();
    ASSERT_NE(state, nullptr);
    EXPECT_TRUE(state->equals(*spec->initial_state()));
  }
}

TEST(Registry, UnknownSpecThrows) {
  EXPECT_THROW(make_spec("no_such_adt"), UsageError);
}

TEST(Registry, KnownSpecsCount) { EXPECT_EQ(known_specs().size(), 7u); }

// Parameterized sanity sweep: for every ADT, the virtual adapter agrees
// with the trait on read-only classification and produces equal initial
// states.
class RegistrySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySweep, AdapterConsistency) {
  auto spec = make_spec(GetParam());
  auto s0 = spec->initial_state();
  EXPECT_FALSE(s0->describe().empty());
  // Cloning preserves equality.
  auto s1 = s0->clone();
  EXPECT_TRUE(s0->equals(*s1));
}

INSTANTIATE_TEST_SUITE_P(AllAdts, RegistrySweep,
                         ::testing::Values("int_set", "counter",
                                           "bank_account", "fifo_queue",
                                           "kv_store", "bag", "rw_register"));

}  // namespace
}  // namespace argus
