// Integration tests: multithreaded workloads driven through the
// WorkloadDriver against every protocol, checking global invariants that
// only hold if the protocol actually provides atomicity — money
// conservation under concurrent transfers, consistent audit snapshots,
// and queue item conservation.
#include <gtest/gtest.h>

#include <atomic>

#include "sim/scenarios.h"
#include "sim/workload.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/fifo_queue.h"
#include "test_util.h"

namespace argus {
namespace {

std::string param_name(Protocol p) {
  std::string name = to_string(p);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

constexpr std::int64_t kAccounts = 4;
constexpr std::int64_t kInitialBalance = 100;
constexpr std::int64_t kTotal = kAccounts * kInitialBalance;

class TransferWorkload : public ::testing::TestWithParam<Protocol> {};

TEST_P(TransferWorkload, MoneyConserved) {
  Runtime rt(/*record_history=*/false);
  auto bank = BankScenario::create(rt, GetParam(), kAccounts, kInitialBalance);

  WorkloadOptions options;
  options.threads = 4;
  options.transactions_per_thread = 40;
  options.seed = 42;
  WorkloadDriver driver(rt, options);
  const auto result = driver.run({bank.transfer_mix(7, 1)});

  EXPECT_GT(result.committed, 0u);
  EXPECT_EQ(result.gave_up, 0u);
  EXPECT_EQ(bank.total_balance(rt, supports_snapshot_reads(GetParam())),
            kTotal);
}

TEST_P(TransferWorkload, AuditsSeeConsistentTotals) {
  const Protocol protocol = GetParam();
  Runtime rt(/*record_history=*/false);
  auto bank = BankScenario::create(rt, protocol, kAccounts, kInitialBalance);

  std::atomic<std::uint64_t> inconsistent_audits{0};
  std::atomic<std::uint64_t> audits{0};
  MixItem audit{
      "audit",
      supports_snapshot_reads(protocol) ? TxnKind::kReadOnly
                                        : TxnKind::kUpdate,
      1,
      [&, accounts = bank.accounts](Transaction& txn, SplitMix64&) {
        std::int64_t total = 0;
        for (const auto& account : accounts) {
          total += account->invoke(txn, account::balance()).as_int();
        }
        ++audits;
        if (total != kTotal) ++inconsistent_audits;
      }};

  WorkloadOptions options;
  options.threads = 4;
  options.transactions_per_thread = 30;
  options.seed = 7;
  WorkloadDriver driver(rt, options);
  const auto result = driver.run({bank.transfer_mix(5, 3), audit});

  EXPECT_GT(audits.load(), 0u);
  // Serializability: every audit (including retried ones that later
  // aborted) ran against a consistent snapshot under snapshot protocols;
  // under locking protocols only *committed* audits are guaranteed
  // consistent, but our audit records its total before commit — an
  // aborted audit may have seen garbage only if the protocol exposes
  // dirty state, which none of ours do. So: zero inconsistent reads.
  EXPECT_EQ(inconsistent_audits.load(), 0u);
  EXPECT_EQ(result.gave_up, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, TransferWorkload,
                         ::testing::Values(Protocol::kDynamic,
                                           Protocol::kStatic,
                                           Protocol::kHybrid,
                                           Protocol::kTwoPhase,
                                           Protocol::kCommutativity,
                                           Protocol::kTimestamp),
                         [](const auto& info) {
                           return param_name(info.param);
                         });

class QueueWorkload : public ::testing::TestWithParam<Protocol> {};

TEST_P(QueueWorkload, ItemsConserved) {
  Runtime rt(/*record_history=*/false);
  auto scenario = QueueScenario::create(rt, GetParam());

  // Pre-fill generously so consumers never block on an empty queue after
  // the producers stop.
  constexpr int kPrefill = 500;
  {
    auto t = rt.begin();
    for (int i = 0; i < kPrefill; ++i) {
      scenario.queue->invoke(*t, fifo::enqueue(i));
    }
    rt.commit(t);
  }

  WorkloadOptions options;
  options.threads = 3;
  options.transactions_per_thread = 30;
  options.seed = 3;
  WorkloadDriver driver(rt, options);
  const auto result =
      driver.run({scenario.producer_mix(1, 2), scenario.consumer_mix(1, 1)});
  EXPECT_GT(result.committed, 0u);
  EXPECT_EQ(result.gave_up, 0u);

  // Conservation: remaining = prefill + committed enqueues - committed
  // dequeues (aborted attempts must have rolled back completely).
  const std::int64_t produced =
      static_cast<std::int64_t>(result.by_label.at("producer").committed);
  const std::int64_t consumed =
      result.by_label.contains("consumer")
          ? static_cast<std::int64_t>(result.by_label.at("consumer").committed)
          : 0;
  auto t = rt.begin();
  const std::int64_t remaining =
      scenario.queue->invoke(*t, fifo::size()).as_int();
  rt.commit(t);
  EXPECT_EQ(remaining, kPrefill + produced - consumed);
}

INSTANTIATE_TEST_SUITE_P(LockingProtocols, QueueWorkload,
                         ::testing::Values(Protocol::kDynamic,
                                           Protocol::kTwoPhase,
                                           Protocol::kCommutativity),
                         [](const auto& info) {
                           return param_name(info.param);
                         });

TEST(QueueWorkloadHybrid, ExactConservation) {
  Runtime rt(/*record_history=*/false);
  auto scenario = QueueScenario::create(rt, Protocol::kHybrid);

  // Deterministic single-producer multi-consumer run with exact
  // accounting: producers enqueue 1..N, consumers dequeue M < N items.
  constexpr int kN = 200;
  constexpr int kM = 150;
  std::int64_t expected_sum = 0;
  for (int i = 1; i <= kN; ++i) expected_sum += i;

  auto producer_thread = std::thread([&] {
    for (int i = 1; i <= kN; ++i) {
      auto t = rt.begin();
      scenario.queue->invoke(*t, fifo::enqueue(i));
      rt.commit(t);
    }
  });
  std::atomic<std::int64_t> consumed_sum{0};
  std::vector<std::thread> consumers;
  std::atomic<int> remaining{kM};
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (remaining.fetch_sub(1) > 0) {
        while (true) {
          auto t = rt.begin();
          try {
            consumed_sum +=
                scenario.queue->invoke(*t, fifo::dequeue()).as_int();
            rt.commit(t);
            break;
          } catch (const TransactionAborted&) {
            rt.abort(t);
          }
        }
      }
    });
  }
  producer_thread.join();
  for (auto& c : consumers) c.join();

  auto hybrid_queue = std::dynamic_pointer_cast<HybridFifoQueue>(scenario.queue);
  ASSERT_NE(hybrid_queue, nullptr);
  std::int64_t drained = 0;
  const auto items = hybrid_queue->committed_items();
  for (std::int64_t v : items) drained += v;
  EXPECT_EQ(consumed_sum.load() + drained, expected_sum);
  EXPECT_EQ(items.size(), static_cast<std::size_t>(kN - kM));
}

TEST(WorkloadDriver, EmptyMixRejected) {
  Runtime rt(false);
  WorkloadDriver driver(rt, WorkloadOptions{});
  EXPECT_THROW((void)driver.run({}), UsageError);
}

TEST(WorkloadDriver, MetricsPopulated) {
  Runtime rt(false);
  auto bank = BankScenario::create(rt, Protocol::kDynamic, 2, 50);
  WorkloadOptions options;
  options.threads = 2;
  options.transactions_per_thread = 10;
  WorkloadDriver driver(rt, options);
  const auto result = driver.run({bank.transfer_mix(3, 1)});
  EXPECT_EQ(result.committed, 20u);  // 2 threads x 10 transactions
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.throughput(), 0.0);
  ASSERT_TRUE(result.by_label.contains("transfer"));
  EXPECT_EQ(result.by_label.at("transfer").committed, 20u);
  EXPECT_GT(result.by_label.at("transfer").latency.mean(), 0.0);
  EXPECT_FALSE(result.summary().empty());
}

}  // namespace
}  // namespace argus
