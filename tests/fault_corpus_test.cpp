// Corpus replay: the checked-in (seed, plan) tuples in tests/corpus/ are
// configurations worth pinning forever — one per crash point family.
// Each must (a) certify clean through crash + recovery and (b) reproduce
// its flight-recorder trace byte for byte on a second run.
//
// The binary doubles as the minimization tool:
//
//   fault_corpus_test --minimize <config-file>
//
// bisects a failing config's fault budget to the smallest reproducing
// prefix and prints the shrunken config (ready to check back into the
// corpus).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/fault_sweep.h"

namespace argus {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> out;
  for (const auto& entry :
       std::filesystem::directory_iterator(ARGUS_CORPUS_DIR)) {
    if (entry.path().extension() == ".txt") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class FaultCorpus : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(FaultCorpus, ReplaysCleanAndByteEqual) {
  const auto path = GetParam();
  FaultSweepCase c;
  std::string error;
  ASSERT_TRUE(parse_fault_case(read_file(path), &c, &error))
      << path << ": " << error;

  const FaultCaseResult first = run_fault_case(c);
  EXPECT_TRUE(first.ok) << path << "\n" << first.failure;
  ASSERT_FALSE(first.trace.empty());

  const FaultCaseResult second = run_fault_case(c);
  EXPECT_EQ(first.trace, second.trace)
      << path << ": same seed must reproduce the trace byte for byte";
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
}

INSTANTIATE_TEST_SUITE_P(Corpus, FaultCorpus,
                         ::testing::ValuesIn(corpus_files()),
                         [](const auto& info) {
                           std::string name = info.param.stem().string();
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

TEST(FaultCorpus, CorpusIsNotEmpty) { EXPECT_GE(corpus_files().size(), 3u); }

int minimize_main(const std::string& file) {
  FaultSweepCase c;
  std::string error;
  if (!parse_fault_case(read_file(file), &c, &error)) {
    std::cerr << "cannot parse " << file << ": " << error << "\n";
    return 2;
  }
  const FaultCaseResult full = run_fault_case(c);
  if (full.ok) {
    std::cout << "config passes (" << full.faults_injected
              << " faults injected); nothing to minimize\n";
    return 0;
  }
  std::cout << "config fails:\n" << full.failure << "\n\nminimizing over "
            << full.faults_injected << " injected faults...\n";
  const FaultSweepCase minimized = minimize_fault_budget(
      c, [](const FaultSweepCase& probe) { return !run_fault_case(probe).ok; });
  const FaultCaseResult shrunk = run_fault_case(minimized);
  std::cout << "\nsmallest reproducing budget: max_faults "
            << minimized.plan.max_faults << " (" << shrunk.faults_injected
            << " faults injected)\n\n"
            << to_config_string(minimized) << "\nfailure at that budget:\n"
            << shrunk.failure << "\n";
  return 1;  // the config still fails — that is the point of the tool
}

}  // namespace
}  // namespace argus

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--minimize") {
    return argus::minimize_main(argv[2]);
  }
  if (argc == 2 && std::string(argv[1]) == "--minimize") {
    std::cerr << "usage: " << argv[0] << " --minimize <config-file>\n";
    return 2;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
