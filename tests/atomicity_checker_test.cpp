// Behavioural tests of the four atomicity checkers on constructed
// histories (the paper's own printed traces live in paper_traces_test).
#include <gtest/gtest.h>

#include "check/atomicity.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

SystemSpec one_set() {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  return sys;
}

TEST(CheckAtomic, EmptyHistoryAtomic) {
  const auto sys = one_set();
  EXPECT_TRUE(check_atomic(sys, History{}).ok);
}

TEST(CheckAtomic, AbortedEffectsInvisible) {
  const auto sys = one_set();
  // b's insert aborted; a's member(3)=false is consistent only because
  // perm drops b.
  const History h = hist({
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      abort(X, B),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{false}),
      commit(X, A),
  });
  EXPECT_TRUE(check_atomic(sys, h).ok);
}

TEST(CheckAtomic, DirtyReadOfAbortedWriterNotAtomic) {
  const auto sys = one_set();
  // a observed b's insert, but b aborted: perm(h) has member(3)=true on
  // an empty set.
  const History h = hist({
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{true}),
      abort(X, B),
      commit(X, A),
  });
  const auto r = check_atomic(sys, h);
  EXPECT_FALSE(r.ok) << r.explanation;
}

TEST(CheckAtomic, ActiveActivityIgnored) {
  const auto sys = one_set();
  // b never finishes; the committed part is consistent.
  const History h = hist({
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{false}),
      commit(X, A),
  });
  EXPECT_TRUE(check_atomic(sys, h).ok);
}

TEST(CheckDynamicAtomic, EmptyPrecedesRequiresAllOrders) {
  const auto sys = one_set();
  // No precedes pairs but b observed a: serializable only a-b => not
  // dynamic atomic.
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit(X, A),
      commit(X, B),
  });
  const auto r = check_dynamic_atomic(sys, h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("b-a"), std::string::npos) << r.explanation;
}

TEST(CheckDynamicAtomic, PrecedesPairLegitimizesDependency) {
  const auto sys = one_set();
  // Same observation, but b's response comes after a's commit: <a,b> in
  // precedes, so only a-b must be serializable.
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit(X, B),
  });
  const auto r = check_dynamic_atomic(sys, h);
  EXPECT_TRUE(r.ok) << r.explanation;
}

TEST(CheckDynamicAtomic, AbortedActivitiesUnconstrained) {
  const auto sys = one_set();
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),  // dirty read...
      abort(X, B),                 // ...but b aborts
      commit(X, A),
  });
  EXPECT_TRUE(check_dynamic_atomic(sys, h).ok);
}

TEST(CheckDynamicAtomic, ImpliesAtomic) {
  // Dynamic atomicity is at least as strong as atomicity on every
  // history we construct here.
  const auto sys = one_set();
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      invoke(X, B, op("insert", 2)),
      respond(X, A, ok()),
      respond(X, B, ok()),
      commit(X, A),
      commit(X, B),
  });
  EXPECT_TRUE(check_dynamic_atomic(sys, h).ok);
  EXPECT_TRUE(check_atomic(sys, h).ok);
}

TEST(CheckStaticAtomic, MissingTimestampFails) {
  const auto sys = one_set();
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      commit(X, A),
  });
  const auto r = check_static_atomic(sys, h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("no timestamp"), std::string::npos);
}

TEST(CheckStaticAtomic, TimestampOrderRespected) {
  const auto sys = one_set();
  const History h = hist({
      initiate(X, A, 1),
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      initiate(X, B, 2),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit(X, B),
  });
  EXPECT_TRUE(check_static_atomic(sys, h).ok);
}

TEST(CheckStaticAtomic, AbortedActivityTimestampIrrelevant) {
  const auto sys = one_set();
  const History h = hist({
      initiate(X, A, 5),
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      abort(X, A),
      initiate(X, B, 1),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{false}),
      commit(X, B),
  });
  EXPECT_TRUE(check_static_atomic(sys, h).ok);
}

TEST(CheckHybridAtomic, CommitTimestampsOrderUpdates) {
  const auto sys = one_set();
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{false}),
      commit_at(X, B, 1),  // b serializes first: member(3)=false fits
      commit_at(X, A, 2),
  });
  EXPECT_TRUE(check_hybrid_atomic(sys, h).ok);
}

TEST(CheckHybridAtomic, WrongCommitOrderFails) {
  const auto sys = one_set();
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{false}),
      commit_at(X, B, 2),
      commit_at(X, A, 1),  // a first: member(3) should then be true
  });
  EXPECT_FALSE(check_hybrid_atomic(sys, h).ok);
}

TEST(CheckHybridAtomic, ReadOnlySnapshotPosition) {
  const auto sys = one_set();
  // r initiates between a's and b's commit timestamps and must see a
  // but not b.
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      commit_at(X, A, 1),
      initiate(X, R, 2),
      invoke(X, B, op("insert", 2)),
      respond(X, B, ok()),
      commit_at(X, B, 3),
      invoke(X, R, op("member", 1)),
      respond(X, R, Value{true}),
      invoke(X, R, op("member", 2)),
      respond(X, R, Value{false}),
      commit(X, R),
  });
  EXPECT_TRUE(check_hybrid_atomic(sys, h).ok)
      << check_hybrid_atomic(sys, h).explanation;
}

TEST(CheckHybridAtomic, SnapshotSeeingFutureFails) {
  const auto sys = one_set();
  const History h = hist({
      initiate(X, R, 1),
      invoke(X, B, op("insert", 2)),
      respond(X, B, ok()),
      commit_at(X, B, 2),
      invoke(X, R, op("member", 2)),
      respond(X, R, Value{true}),  // r (ts 1) saw b (ts 2)
      commit(X, R),
  });
  EXPECT_FALSE(check_hybrid_atomic(sys, h).ok);
}

TEST(CheckResult, ExplanationsNameOrders) {
  const auto sys = one_set();
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit(X, B),
  });
  const auto r = check_atomic(sys, h);
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.explanation.find("a-b"), std::string::npos) << r.explanation;
}

}  // namespace
}  // namespace argus
