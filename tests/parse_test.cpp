// History text parser tests, including full round-trips through
// History::to_string().
#include <gtest/gtest.h>

#include "check/random_history.h"
#include "hist/parse.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

Event parse_one(const std::string& line) {
  auto r = parse_event_line(line);
  EXPECT_TRUE(r.history.has_value()) << r.error;
  return r.history->at(0);
}

TEST(ParseEvent, Invocation) {
  EXPECT_EQ(parse_one("<insert(3),x,a>"), invoke(X, A, op("insert", 3)));
  EXPECT_EQ(parse_one("<put(1,2),y,b>"), invoke(Y, B, op("put", 1, 2)));
  EXPECT_EQ(parse_one("<dequeue,x,c>"), invoke(X, C, op("dequeue")));
  EXPECT_EQ(parse_one("<frobnicate(),x,a>"),
            invoke(X, A, Operation{"frobnicate", {}}));
}

TEST(ParseEvent, Responses) {
  EXPECT_EQ(parse_one("<ok,x,a>"), respond(X, A, ok()));
  EXPECT_EQ(parse_one("<true,x,a>"), respond(X, A, Value{true}));
  EXPECT_EQ(parse_one("<false,x,b>"), respond(X, B, Value{false}));
  EXPECT_EQ(parse_one("<42,x,a>"), respond(X, A, Value{42}));
  EXPECT_EQ(parse_one("<-7,x,a>"), respond(X, A, Value{-7}));
  EXPECT_EQ(parse_one("<insufficient_funds,y,a>"),
            respond(Y, A, Value{"insufficient_funds"}));
}

TEST(ParseEvent, Terminators) {
  EXPECT_EQ(parse_one("<commit,x,a>"), commit(X, A));
  EXPECT_EQ(parse_one("<abort,y,c>"), abort(Y, C));
  EXPECT_EQ(parse_one("<commit(5),x,b>"), commit_at(X, B, 5));
  EXPECT_EQ(parse_one("<initiate(2),x,r>"), initiate(X, R, 2));
}

TEST(ParseEvent, ActivityAndObjectNames) {
  EXPECT_EQ(parse_one("<ok,obj7,t30>"),
            respond(ObjectId{7}, ActivityId{30}, ok()));
  EXPECT_EQ(parse_one("<ok,z,q>"),
            respond(ObjectId{2}, ActivityId{'q' - 'a'}, ok()));
}

TEST(ParseEvent, Whitespace) {
  EXPECT_EQ(parse_one("  <insert(3), x, a>  "),
            invoke(X, A, op("insert", 3)));
}

TEST(ParseEvent, Errors) {
  EXPECT_FALSE(parse_event_line("no brackets").history.has_value());
  EXPECT_FALSE(parse_event_line("<only,two>").history.has_value());
  EXPECT_FALSE(parse_event_line("<ok,BAD,a>").history.has_value());
  EXPECT_FALSE(parse_event_line("<ok,x,BAD!>").history.has_value());
  EXPECT_FALSE(parse_event_line("<commit(zero),x,a>").history.has_value());
  EXPECT_FALSE(parse_event_line("<insert(3,x,a>").history.has_value());
}

TEST(ParseHistory, MultiLineWithCommentsAndBlanks) {
  const std::string text = R"(
# The paper's section 2 example
<insert(3),x,a>
<member(3),x,b>

<ok,x,a>
<false,x,b>
<commit,x,a>
<commit,x,b>
)";
  auto r = parse_history(text);
  ASSERT_TRUE(r.history.has_value()) << r.error;
  EXPECT_EQ(r.history->size(), 6u);
  EXPECT_EQ(r.history->at(0), invoke(X, A, op("insert", 3)));
}

TEST(ParseHistory, ReportsLineNumber) {
  auto r = parse_history("<ok,x,a>\nGARBAGE\n");
  ASSERT_FALSE(r.history.has_value());
  EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;
}

TEST(ParseHistory, RoundTripPlain) {
  const History original = hist({
      invoke(X, A, op("member", 3)),
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      respond(X, A, Value{false}),
      invoke(X, C, op("dequeue")),
      commit(X, B),
      respond(X, C, Value{1}),
      commit(X, A),
      abort(X, C),
  });
  auto r = parse_history(original.to_string());
  ASSERT_TRUE(r.history.has_value()) << r.error;
  EXPECT_EQ(*r.history, original);
}

TEST(ParseHistory, RoundTripTimestamped) {
  const History original = hist({
      initiate(X, R, 1),
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit_at(X, A, 2),
      invoke(X, R, op("member", 3)),
      respond(X, R, Value{false}),
      commit(X, R),
  });
  auto r = parse_history(original.to_string());
  ASSERT_TRUE(r.history.has_value()) << r.error;
  EXPECT_EQ(*r.history, original);
}

// Fuzz: random machine-generated histories must round-trip exactly.
class ParseRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParseRoundTripFuzz, RandomHistoriesRoundTrip) {
  SystemSpec sys;
  sys.add_object(X, "kv_store");
  sys.add_object(Y, "bank_account");
  RandomHistoryOptions options;
  options.activities = 5;
  options.ops_per_activity = 4;
  options.abort_percent = 25;
  options.seed = GetParam();
  const History original = random_atomic_history(sys, options);
  auto r = parse_history(original.to_string());
  ASSERT_TRUE(r.history.has_value()) << r.error;
  EXPECT_EQ(*r.history, original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseRoundTripFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(ParseHistory, RoundTripKVAndAccount) {
  const History original = hist({
      invoke(Y, A, op("put", 1, 2)),
      respond(Y, A, ok()),
      invoke(Y, A, op("withdraw", 9)),
      respond(Y, A, Value{"insufficient_funds"}),
      invoke(Y, A, op("balance")),
      respond(Y, A, Value{0}),
      commit(Y, A),
  });
  auto r = parse_history(original.to_string());
  ASSERT_TRUE(r.history.has_value()) << r.error;
  EXPECT_EQ(*r.history, original);
}

}  // namespace
}  // namespace argus
