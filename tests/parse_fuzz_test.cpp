// Round-trip property test for the parse.h text format: random
// well-formed histories (check/random_history) rendered via
// History::to_string(), re-parsed, and compared event for event —
// including histories salted with the '#' fault-comment lines the fault
// injector appends to its traces (parse must skip them, byte-for-byte
// traces depend on it).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "check/random_history.h"
#include "check/system.h"
#include "common/rng.h"
#include "hist/parse.h"
#include "spec/adt_spec.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/fifo_queue.h"

namespace argus {
namespace {

SystemSpec two_object_system() {
  SystemSpec system;
  system.add_object(ObjectId{1},
                    std::make_shared<AdtSpec<BankAccountAdt>>());
  system.add_object(ObjectId{2}, std::make_shared<AdtSpec<FifoQueueAdt>>());
  return system;
}

void expect_round_trip(const History& h, const std::string& text) {
  const ParseResult parsed = parse_history(text);
  ASSERT_TRUE(parsed.history.has_value()) << parsed.error << "\n" << text;
  ASSERT_EQ(parsed.history->events().size(), h.events().size());
  for (std::size_t i = 0; i < h.events().size(); ++i) {
    EXPECT_EQ(parsed.history->events()[i], h.events()[i])
        << "event " << i << " of\n"
        << text;
  }
}

TEST(ParseFuzz, RandomHistoriesRoundTrip) {
  const SystemSpec system = two_object_system();
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    RandomHistoryOptions options;
    options.activities = 2 + static_cast<int>(seed % 4);
    options.ops_per_activity = 1 + static_cast<int>(seed % 5);
    options.abort_percent = static_cast<int>((seed * 13) % 50);
    options.contiguity_percent = static_cast<int>((seed * 29) % 101);
    options.seed = seed;
    const History h = random_atomic_history(system, options);
    expect_round_trip(h, h.to_string());
  }
}

TEST(ParseFuzz, FaultCommentLinesAreIgnored) {
  // The fault injector's trace_to_string() appends lines like
  // "# fault force-fail arrival=3 txn=t7" after the history; run traces
  // are history text + comments. Salt every gap with such lines (and
  // blanks, and indentation) and the parsed events must be unchanged.
  const SystemSpec system = two_object_system();
  SplitMix64 salt_rng(99);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomHistoryOptions options;
    options.activities = 3;
    options.ops_per_activity = 3;
    options.abort_percent = 25;
    options.seed = seed;
    const History h = random_atomic_history(system, options);

    std::istringstream in(h.to_string());
    std::ostringstream salted;
    salted << "# fault-injector trace (seed " << seed << ")\n\n";
    std::string line;
    while (std::getline(in, line)) {
      salted << "  " << line << "\n";
      switch (salt_rng.below(4)) {
        case 0:
          salted << "# fault force-fail arrival=" << salt_rng.below(100)
                 << "\n";
          break;
        case 1:
          salted << "\n";
          break;
        case 2:
          salted << "\t# fault crash point=mid-apply\n";
          break;
        default:
          break;
      }
    }
    expect_round_trip(h, salted.str());
  }
}

TEST(ParseFuzz, SiteStampedMergedTracesRoundTrip) {
  // DistRuntime::merged_trace() renders every event with its origin
  // site ("site2: commit a7 ...") and interleaves site fail/recover
  // fault comments ("# site1 fail ...", "# coord ..."). The parser must
  // strip the site stamp and skip the fault lines, leaving exactly the
  // merged history — dist corpus byte-for-byte replay depends on it.
  const SystemSpec system = two_object_system();
  SplitMix64 salt_rng(777);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomHistoryOptions options;
    options.activities = 3;
    options.ops_per_activity = 3;
    options.abort_percent = 20;
    options.seed = seed * 31 + 7;
    const History h = random_atomic_history(system, options);

    std::istringstream in(h.to_string());
    std::ostringstream merged;
    merged << "# merged cross-site trace (seed " << seed << ")\n";
    std::string line;
    while (std::getline(in, line)) {
      // Stamp each event with a pseudo-random origin site.
      merged << "site" << salt_rng.below(4) << ": " << line << "\n";
      switch (salt_rng.below(8)) {
        case 0:
          merged << "# site" << salt_rng.below(4) << " fail arrival="
                 << salt_rng.below(100) << "\n";
          break;
        case 1:
          merged << "# site" << salt_rng.below(4) << " recover\n";
          break;
        case 2:
          merged << "# coord fault force-fail arrival=" << salt_rng.below(50)
                 << "\n";
          break;
        // The coordinator-fault vocabulary (PR 8), exactly as
        // to_trace_line renders it: pinned 2PC-step crashes, failover,
        // message loss/latency, decision-log force failures.
        case 3:
          merged << "# coord fault seq=" << salt_rng.below(100)
                 << " site=coord-"
                 << (salt_rng.below(2) != 0 ? "mid-delivery" : "post-decision")
                 << " arrival=1 action=crash detail=13\n";
          break;
        case 4:
          merged << "# coord fault seq=" << salt_rng.below(100)
                 << " site=msg-" << (salt_rng.below(2) != 0 ? "decide" : "ack")
                 << " arrival=" << salt_rng.below(9)
                 << " action=msg-" << (salt_rng.below(2) != 0 ? "loss" : "latency")
                 << " detail=0\n";
          break;
        case 5:
          merged << "# coord fault seq=" << salt_rng.below(100)
                 << " site=coord-recover arrival=" << salt_rng.below(9)
                 << " action=coord-recover detail=0\n";
          break;
        case 6:
          merged << "# coord fault seq=" << salt_rng.below(100)
                 << " site=decision-force arrival=" << salt_rng.below(9)
                 << " action=force-fail detail=0\n";
          break;
        default:
          break;
      }
    }
    expect_round_trip(h, merged.str());
  }
}

TEST(ParseFuzz, SiteStampRequiresTheExactShape) {
  // "siteN:" is only a stamp when it is the word "site", digits, and a
  // colon; anything else must still parse as (or fail as) an ordinary
  // event line, not be silently stripped.
  const ParseResult bad = parse_history("sitex: <deposit(3),x,a>\n");
  EXPECT_FALSE(bad.history.has_value());
  const ParseResult spaced = parse_history("site 2: <deposit(3),x,a>\n");
  EXPECT_FALSE(spaced.history.has_value());
}

TEST(ParseFuzz, TimestampedEventsRoundTrip) {
  // The random generator produces the dynamic flavor; cover the
  // timestamped initiate/commit forms (static and hybrid histories)
  // explicitly.
  History h;
  h.append(initiate(ObjectId{1}, ActivityId{1}, 5));
  h.append(invoke(ObjectId{1}, ActivityId{1}, account::deposit(3)));
  h.append(respond(ObjectId{1}, ActivityId{1}, Value{Unit{}}));
  h.append(commit_at(ObjectId{1}, ActivityId{1}, 9));
  h.append(invoke(ObjectId{2}, ActivityId{2}, fifo::dequeue()));
  h.append(respond(ObjectId{2}, ActivityId{2}, Value{7}));
  h.append(abort(ObjectId{2}, ActivityId{2}));
  expect_round_trip(h, h.to_string());
}

TEST(ParseFuzz, LargeInterleavedHistoryRoundTrips) {
  const SystemSpec system = two_object_system();
  RandomHistoryOptions options;
  options.activities = 12;
  options.ops_per_activity = 6;
  options.abort_percent = 15;
  options.contiguity_percent = 0;  // maximally interleaved
  options.seed = 4242;
  const History h = random_atomic_history(system, options);
  EXPECT_GT(h.events().size(), 100u);
  expect_round_trip(h, h.to_string());
}

}  // namespace
}  // namespace argus
