// The CC-mode executor tier (ctest -L ccmodes), part 2: the matrix.
// Every CCMode drives the same seeded workloads through the same
// TxnExecutor pool, and every run is held to the same bar:
//
//   * money conservation over concurrent transfers (no partial commits);
//   * a recorded run certifies against the mode's formal atomicity
//     property with the online sentinel watching (0 violations);
//   * the executor accounts for every task (submitted == completed, no
//     task silently dropped, retry budget never exhausted);
//   * under MVCC, read-only audits are abort-free and every audit —
//     committed or not — reads a consistent snapshot total.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "check/atomicity.h"
#include "hist/wellformed.h"
#include "sim/scenarios.h"
#include "spec/adts/bank_account.h"
#include "test_util.h"

namespace argus {
namespace {

std::string param_name(CCMode m) {
  std::string name = to_string(m);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

constexpr std::int64_t kAccounts = 4;
constexpr std::int64_t kInitialBalance = 100;
constexpr std::int64_t kTotal = kAccounts * kInitialBalance;

class CCModeMatrix : public ::testing::TestWithParam<CCMode> {};

TEST_P(CCModeMatrix, MoneyConservedThroughTheExecutor) {
  const CCMode mode = GetParam();
  Runtime rt(/*record_history=*/false);
  rt.set_cc_mode(mode);
  auto bank =
      BankScenario::create(rt, to_protocol(mode), kAccounts, kInitialBalance);
  rt.set_wait_timeout_all(std::chrono::milliseconds(1000));

  WorkloadOptions options;
  options.threads = 4;
  options.transactions_per_thread = 40;
  options.seed = 42;
  WorkloadDriver driver(rt, options);
  const auto result = driver.run({bank.transfer_mix(7, 1)});

  EXPECT_GT(result.committed, 0u);
  EXPECT_EQ(result.gave_up, 0u);
  EXPECT_EQ(result.executor.submitted, 160u);
  EXPECT_EQ(result.executor.completed, 160u);
  EXPECT_EQ(bank.total_balance(rt, mode_supports_snapshot_reads(mode)),
            kTotal);
  if (!uses_blocking_admission(mode)) {
    // Optimistic modes never deadlock — their objects never block.
    EXPECT_EQ(result.deadlocks, 0u);
    EXPECT_EQ(result.aborts_by_reason.count(AbortReason::kDeadlock), 0u);
    EXPECT_EQ(result.aborts_by_reason.count(AbortReason::kWaitTimeout), 0u);
  }
}

TEST_P(CCModeMatrix, RecordedRunCertifiesAgainstTheModeProperty) {
  const CCMode mode = GetParam();
  Runtime rt(/*record_history=*/true);
  rt.set_cc_mode(mode);
  auto bank = BankScenario::create(rt, to_protocol(mode), /*n=*/3,
                                   kInitialBalance);
  rt.set_wait_timeout_all(std::chrono::milliseconds(1000));
  AtomicitySentinel& sentinel = rt.start_sentinel();

  // Small on purpose: the dynamic checker enumerates precedes-consistent
  // activity orders. Update transactions only, so the hybrid read-only
  // set below is empty for every mode.
  WorkloadOptions options;
  options.threads = 3;
  options.transactions_per_thread = 2;
  options.seed = 7;
  WorkloadDriver driver(rt, options);
  const auto result = driver.run({bank.transfer_mix(5, 1)});
  EXPECT_GT(result.committed, 0u);

  sentinel.stop();
  EXPECT_EQ(sentinel.violations(), 0u) << sentinel.last_violation();
  rt.stop_sentinel();

  const History h = rt.history();
  switch (mode) {
    case CCMode::kDynamic: {
      const auto wf = check_well_formed(h);
      ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
      const auto verdict = check_dynamic_atomic(rt.system(), h);
      EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
      break;
    }
    case CCMode::kStatic: {
      const auto wf = check_well_formed_static(h);
      ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
      const auto verdict = check_static_atomic(rt.system(), h);
      EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
      break;
    }
    case CCMode::kHybrid:
    case CCMode::kOcc:
    case CCMode::kMvcc: {
      const auto wf = check_well_formed_hybrid(h, {});
      ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
      const auto verdict = check_hybrid_atomic(rt.system(), h);
      EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, CCModeMatrix,
                         ::testing::ValuesIn(all_cc_modes()),
                         [](const auto& info) {
                           return param_name(info.param);
                         });

TEST(MvccWorkload, ReadOnlyAuditsAreAbortFreeAndConsistent) {
  Runtime rt(/*record_history=*/false);
  rt.set_cc_mode(CCMode::kMvcc);
  auto bank = BankScenario::create(rt, Protocol::kMvcc, kAccounts,
                                   kInitialBalance);

  std::atomic<std::uint64_t> audits{0};
  std::atomic<std::uint64_t> inconsistent{0};
  MixItem audit{"audit", TxnKind::kReadOnly, 1,
                [&, accounts = bank.accounts](Transaction& txn, SplitMix64&) {
                  std::int64_t total = 0;
                  for (const auto& account : accounts) {
                    total += account->invoke(txn, account::balance()).as_int();
                  }
                  ++audits;
                  if (total != kTotal) ++inconsistent;
                }};

  WorkloadOptions options;
  options.threads = 4;
  options.transactions_per_thread = 30;
  options.seed = 7;
  WorkloadDriver driver(rt, options);
  const auto result = driver.run({bank.transfer_mix(5, 3), audit});

  EXPECT_GT(audits.load(), 0u);
  // Every audit — even a hypothetical retried one — reads one
  // initiation-time snapshot: totals are consistent unconditionally.
  EXPECT_EQ(inconsistent.load(), 0u);
  // And the snapshot path is abort-free: no audit ever lost validation.
  ASSERT_TRUE(result.by_label.contains("audit"));
  EXPECT_EQ(result.by_label.at("audit").aborted, 0u);
  EXPECT_EQ(result.gave_up, 0u);
}

TEST(OccWorkload, HighContentionStaysLiveAndConserved) {
  // Everyone read-modify-writes one account: the worst case for
  // optimism, since every commit invalidates every in-flight balance
  // read. The pool must stay live (retry budget never exhausted) and
  // the final state must account for every committed increment.
  Runtime rt(/*record_history=*/false);
  rt.set_cc_mode(CCMode::kOcc);
  auto x = rt.create_occ<BankAccountAdt>("hot");

  MixItem rmw{"rmw", TxnKind::kUpdate, 1,
              [&x](Transaction& txn, SplitMix64&) {
                (void)x->invoke(txn, account::balance());
                // Hold the read open long enough that a concurrent
                // commit lands inside the window and invalidates it.
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                x->invoke(txn, account::deposit(1));
              }};

  WorkloadOptions options;
  options.threads = 4;
  options.transactions_per_thread = 30;
  options.seed = 11;
  options.max_retries = 1000;
  WorkloadDriver driver(rt, options);
  const auto result = driver.run({rmw});

  EXPECT_EQ(result.gave_up, 0u);
  EXPECT_EQ(result.committed, 120u);
  EXPECT_EQ(x->committed_state(), 120);
  // Contention on a single account must actually have produced
  // validation losses — otherwise this test exercises nothing.
  EXPECT_GT(result.executor.retries, 0u);
  EXPECT_GT(result.executor.validation_aborts, 0u);
}

}  // namespace
}  // namespace argus
