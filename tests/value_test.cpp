// Unit tests for the common layer: Value, Operation, ids, rng.
#include <gtest/gtest.h>

#include "common/errors.h"
#include "common/ids.h"
#include "common/operation.h"
#include "common/rng.h"
#include "common/value.h"

namespace argus {
namespace {

TEST(Value, DefaultIsUnit) {
  Value v;
  EXPECT_TRUE(v.is_unit());
  EXPECT_EQ(to_string(v), "ok");
}

TEST(Value, BoolRoundTrip) {
  Value t{true};
  Value f{false};
  EXPECT_TRUE(t.is_bool());
  EXPECT_TRUE(t.as_bool());
  EXPECT_FALSE(f.as_bool());
  EXPECT_EQ(to_string(t), "true");
  EXPECT_EQ(to_string(f), "false");
}

TEST(Value, IntRoundTrip) {
  Value v{42};
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(to_string(v), "42");
}

TEST(Value, StringRoundTrip) {
  Value v{"insufficient_funds"};
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "insufficient_funds");
  EXPECT_EQ(to_string(v), "insufficient_funds");
}

TEST(Value, EqualityDistinguishesKinds) {
  // bool true vs int 1 vs unit must all differ.
  EXPECT_NE(Value{true}, Value{1});
  EXPECT_NE(Value{Unit{}}, Value{0});
  EXPECT_NE(Value{"1"}, Value{1});
  EXPECT_EQ(Value{7}, Value{7});
  EXPECT_EQ(Value{Unit{}}, ok());
}

TEST(Value, OrderingIsTotal) {
  EXPECT_TRUE(Value{1} < Value{2} || Value{2} < Value{1});
  EXPECT_FALSE(Value{3} < Value{3});
}

TEST(Value, WrongAccessorThrows) {
  EXPECT_THROW((void)Value{1}.as_bool(), std::bad_variant_access);
  EXPECT_THROW((void)Value{true}.as_int(), std::bad_variant_access);
}

TEST(Operation, FactoryAndPrinting) {
  EXPECT_EQ(to_string(op("dequeue")), "dequeue");
  EXPECT_EQ(to_string(op("insert", 3)), "insert(3)");
  EXPECT_EQ(to_string(op("put", 1, 2)), "put(1,2)");
  EXPECT_EQ(to_string(op("f", 1, 2, 3)), "f(1,2,3)");
}

TEST(Operation, Equality) {
  EXPECT_EQ(op("insert", 3), op("insert", 3));
  EXPECT_NE(op("insert", 3), op("insert", 4));
  EXPECT_NE(op("insert", 3), op("delete", 3));
  EXPECT_NE(op("dequeue"), op("enqueue", 1));
}

TEST(Ids, ActivityPrinting) {
  EXPECT_EQ(to_string(ActivityId{0}), "a");
  EXPECT_EQ(to_string(ActivityId{1}), "b");
  EXPECT_EQ(to_string(ActivityId{2}), "c");
  EXPECT_EQ(to_string(ActivityId{30}), "t30");
}

TEST(Ids, ObjectPrinting) {
  EXPECT_EQ(to_string(ObjectId{0}), "x");
  EXPECT_EQ(to_string(ObjectId{1}), "y");
  EXPECT_EQ(to_string(ObjectId{5}), "obj5");
}

TEST(Ids, StrongTyping) {
  ActivityId a{3};
  ActivityId b{3};
  EXPECT_EQ(a, b);
  EXPECT_LT(ActivityId{1}, ActivityId{2});
  EXPECT_EQ(std::hash<ActivityId>{}(a), std::hash<ActivityId>{}(b));
}

TEST(AbortReason, Printing) {
  EXPECT_EQ(to_string(AbortReason::kDeadlock), "deadlock");
  EXPECT_EQ(to_string(AbortReason::kTimestampOrder), "timestamp-order");
}

TEST(TransactionAborted, CarriesContext) {
  TransactionAborted e(ActivityId{2}, AbortReason::kDeadlock);
  EXPECT_EQ(e.activity(), ActivityId{2});
  EXPECT_EQ(e.reason(), AbortReason::kDeadlock);
  EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
}

TEST(Rng, Deterministic) {
  SplitMix64 r1(42);
  SplitMix64 r2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r1.next(), r2.next());
}

TEST(Rng, RangeBounds) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BelowBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, ChanceExtremes) {
  SplitMix64 rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(rng.chance(1, 1));
    EXPECT_FALSE(rng.chance(0, 10));
  }
}

}  // namespace
}  // namespace argus
