// HybridAtomicObject and HybridFifoQueue protocol tests: dynamic
// processing of updates, commit-time timestamps, non-interfering
// read-only snapshots (§4.3), and the commit-order queue.
#include <gtest/gtest.h>

#include "check/atomicity.h"
#include "core/runtime.h"
#include "hist/wellformed.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/fifo_queue.h"
#include "spec/adts/int_set.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

std::unordered_set<ActivityId> read_only_of(const History& h) {
  return h.initiated();
}

TEST(HybridObject, UpdatesBehaveDynamically) {
  Runtime rt;
  auto acct = rt.create_hybrid<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(10));
  rt.commit(setup);

  auto tb = rt.begin();
  auto tc = rt.begin();
  EXPECT_EQ(acct->invoke(*tb, account::withdraw(4)), ok());
  EXPECT_EQ(acct->invoke(*tc, account::withdraw(3)), ok());
  rt.commit(tc);
  rt.commit(tb);
  EXPECT_EQ(acct->committed_state(), 3);
}

TEST(HybridObject, CommitEventsCarryTimestamps) {
  Runtime rt;
  auto set = rt.create_hybrid<IntSetAdt>("s");
  auto t = rt.begin();
  set->invoke(*t, intset::insert(1));
  rt.commit(t);
  bool saw_stamped_commit = false;
  const History h = rt.history();
  for (const Event& e : h.events()) {
    if (e.kind == EventKind::kCommit && e.activity == t->id()) {
      EXPECT_TRUE(e.has_timestamp());
      EXPECT_EQ(e.timestamp, t->commit_ts());
      saw_stamped_commit = true;
    }
  }
  EXPECT_TRUE(saw_stamped_commit);
}

TEST(HybridObject, ReadOnlySeesCommittedPrefix) {
  Runtime rt;
  auto set = rt.create_hybrid<IntSetAdt>("s");
  auto t1 = rt.begin();
  set->invoke(*t1, intset::insert(1));
  rt.commit(t1);

  auto reader = rt.begin_read_only();
  auto t2 = rt.begin();
  set->invoke(*t2, intset::insert(2));
  rt.commit(t2);  // commits with ts above the reader's start ts

  // The reader sees exactly the updates committed before it began.
  EXPECT_EQ(set->invoke(*reader, intset::member(1)), Value{true});
  EXPECT_EQ(set->invoke(*reader, intset::member(2)), Value{false});
  rt.commit(reader);

  const History h = rt.history();
  const auto wf = check_well_formed_hybrid(h, read_only_of(h));
  EXPECT_TRUE(wf.ok()) << wf.summary();
  const auto verdict = check_hybrid_atomic(rt.system(), h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(HybridObject, ReadOnlyDoesNotBlockOnPendingUpdate) {
  // §4.3.3: audits "do not interfere in any way with update activities"
  // — and symmetrically are not delayed by them. An uncommitted update
  // holds intentions; the reader answers immediately from its snapshot.
  Runtime rt;
  auto acct = rt.create_hybrid<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(100));
  rt.commit(setup);

  auto writer = rt.begin();
  acct->invoke(*writer, account::withdraw(50));  // tentative

  auto reader = rt.begin_read_only();
  EXPECT_EQ(acct->invoke(*reader, account::balance()), Value{100});
  rt.commit(reader);
  rt.commit(writer);
  EXPECT_EQ(acct->committed_state(), 50);
}

TEST(HybridObject, ReadOnlyDoesNotBlockUpdates) {
  Runtime rt;
  auto acct = rt.create_hybrid<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(100));
  rt.commit(setup);

  auto reader = rt.begin_read_only();
  EXPECT_EQ(acct->invoke(*reader, account::balance()), Value{100});
  // While the reader is open, an update proceeds without blocking —
  // under dynamic atomicity this balance read would have locked out the
  // deposit.
  auto writer = rt.begin();
  EXPECT_EQ(acct->invoke(*writer, account::deposit(5)), ok());
  rt.commit(writer);
  rt.commit(reader);
  EXPECT_EQ(acct->committed_state(), 105);
}

TEST(HybridObject, SnapshotStableAcrossInterleavedCommits) {
  Runtime rt;
  auto set = rt.create_hybrid<IntSetAdt>("s");
  auto reader = rt.begin_read_only();
  EXPECT_EQ(set->invoke(*reader, intset::member(1)), Value{false});
  auto writer = rt.begin();
  set->invoke(*writer, intset::insert(1));
  rt.commit(writer);
  // Same query, same snapshot: still false.
  EXPECT_EQ(set->invoke(*reader, intset::member(1)), Value{false});
  rt.commit(reader);

  const auto verdict = check_hybrid_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(HybridObject, HistoryHybridWellFormed) {
  Runtime rt;
  auto set = rt.create_hybrid<IntSetAdt>("s");
  auto t1 = rt.begin();
  set->invoke(*t1, intset::insert(1));
  rt.commit(t1);
  auto r = rt.begin_read_only();
  set->invoke(*r, intset::member(1));
  rt.commit(r);
  auto t2 = rt.begin();
  set->invoke(*t2, intset::del(1));
  rt.abort(t2);

  const History h = rt.history();
  const auto wf = check_well_formed_hybrid(h, read_only_of(h));
  EXPECT_TRUE(wf.ok()) << wf.summary();
}

// ------------------------------------------------------- hybrid queue --

TEST(HybridQueue, FifoAcrossTransactions) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto t1 = rt.begin();
  q->invoke(*t1, fifo::enqueue(1));
  q->invoke(*t1, fifo::enqueue(2));
  rt.commit(t1);
  auto t2 = rt.begin();
  EXPECT_EQ(q->invoke(*t2, fifo::dequeue()), Value{1});
  EXPECT_EQ(q->invoke(*t2, fifo::dequeue()), Value{2});
  rt.commit(t2);
  EXPECT_TRUE(q->committed_items().empty());
}

TEST(HybridQueue, DistinctValueEnqueuesInterleave) {
  // The concurrency a conflict table cannot admit: enqueue(1) vs
  // enqueue(2) from different transactions, interleaved. Order is fixed
  // at commit (commit order = timestamp order).
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto ta = rt.begin();
  auto tb = rt.begin();
  q->invoke(*ta, fifo::enqueue(1));
  q->invoke(*tb, fifo::enqueue(10));
  q->invoke(*ta, fifo::enqueue(2));
  q->invoke(*tb, fifo::enqueue(20));
  rt.commit(tb);  // b first: 10,20 precede 1,2
  rt.commit(ta);
  EXPECT_EQ(q->committed_items(), (std::vector<std::int64_t>{10, 20, 1, 2}));

  const auto verdict = check_hybrid_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(HybridQueue, AbortedEnqueuesVanish) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto ta = rt.begin();
  auto tb = rt.begin();
  q->invoke(*ta, fifo::enqueue(1));
  q->invoke(*tb, fifo::enqueue(2));
  rt.abort(ta);
  rt.commit(tb);
  EXPECT_EQ(q->committed_items(), (std::vector<std::int64_t>{2}));
}

TEST(HybridQueue, DequeueWaitsForCommittedItem) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto producer = rt.begin();
  q->invoke(*producer, fifo::enqueue(7));  // tentative: not dequeueable
  auto consumer = rt.begin();
  auto blocked = expect_blocks([&] {
    EXPECT_EQ(q->invoke(*consumer, fifo::dequeue()), Value{7});
    rt.commit(consumer);
  });
  rt.commit(producer);
  join_within(blocked);
}

TEST(HybridQueue, ConcurrentDequeuesConflict) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto setup = rt.begin();
  q->invoke(*setup, fifo::enqueue(1));
  q->invoke(*setup, fifo::enqueue(2));
  rt.commit(setup);

  auto t1 = rt.begin();
  auto t2 = rt.begin();
  EXPECT_EQ(q->invoke(*t1, fifo::dequeue()), Value{1});
  auto blocked = expect_blocks([&] {
    // t2 waits while t1 holds a tentative dequeue; after t1 aborts, the
    // front is restored and t2 gets 1.
    EXPECT_EQ(q->invoke(*t2, fifo::dequeue()), Value{1});
    rt.commit(t2);
  });
  rt.abort(t1);
  join_within(blocked);
  EXPECT_EQ(q->committed_items(), (std::vector<std::int64_t>{2}));
}

TEST(HybridQueue, EnqueueDoesNotConflictWithTentativeDequeue) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto setup = rt.begin();
  q->invoke(*setup, fifo::enqueue(1));
  rt.commit(setup);

  auto consumer = rt.begin();
  EXPECT_EQ(q->invoke(*consumer, fifo::dequeue()), Value{1});
  auto producer = rt.begin();
  q->invoke(*producer, fifo::enqueue(9));  // proceeds immediately
  rt.commit(producer);
  rt.commit(consumer);
  EXPECT_EQ(q->committed_items(), (std::vector<std::int64_t>{9}));
}

TEST(HybridQueue, ReadOnlySizeSnapshot) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto t1 = rt.begin();
  q->invoke(*t1, fifo::enqueue(1));
  rt.commit(t1);

  auto reader = rt.begin_read_only();
  auto t2 = rt.begin();
  q->invoke(*t2, fifo::enqueue(2));
  rt.commit(t2);
  // Snapshot below the reader's timestamp: one element.
  EXPECT_EQ(q->invoke(*reader, fifo::size()), Value{1});
  rt.commit(reader);
}

TEST(HybridQueue, UpdateSizeRejected) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto t = rt.begin();
  EXPECT_THROW(q->invoke(*t, fifo::size()), UsageError);
  rt.abort(t);
}

TEST(HybridQueue, ReadOnlyDequeueRejected) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto r = rt.begin_read_only();
  EXPECT_THROW(q->invoke(*r, fifo::dequeue()), UsageError);
  rt.abort(r);
}

TEST(HybridQueue, HistoryHybridAtomic) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  auto ta = rt.begin();
  auto tb = rt.begin();
  q->invoke(*ta, fifo::enqueue(1));
  q->invoke(*tb, fifo::enqueue(2));
  rt.commit(ta);
  rt.commit(tb);
  auto tc = rt.begin();
  EXPECT_EQ(q->invoke(*tc, fifo::dequeue()), Value{1});
  EXPECT_EQ(q->invoke(*tc, fifo::dequeue()), Value{2});
  rt.commit(tc);

  const History h = rt.history();
  const auto wf = check_well_formed_hybrid(h, h.initiated());
  EXPECT_TRUE(wf.ok()) << wf.summary();
  const auto verdict = check_hybrid_atomic(rt.system(), h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

}  // namespace
}  // namespace argus
