// The crash-point sweep: every {crash point x fault mix x seed}
// configuration must come through crash + recovery with the atomicity
// checker and every invariant probe green — and any single configuration
// must replay from its seed to a byte-equal trace. Labeled `faultsweep`
// (its own CI job) on top of the tier-1 suite.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/fault_sweep.h"

namespace argus {
namespace {

TEST(FaultSweepConfig, RoundTripsThroughConfigString) {
  FaultSweepCase c;
  c.protocol = Protocol::kHybrid;
  c.accounts = 3;
  c.transactions = 17;
  c.initial_balance = 250;
  c.plan.seed = 987654321;
  c.plan.force_fail_permille = 120;
  c.plan.force_max_retries = 5;
  c.plan.force_retry_backoff_us = 7;
  c.plan.torn_batch_permille = 333;
  c.plan.leader_latency_permille = 44;
  c.plan.leader_latency_us = 55;
  c.plan.crash_point = FaultSite::kMidApply;
  c.plan.crash_at_arrival = 2;
  c.plan.spurious_timeout_permille = 66;
  c.plan.delayed_wakeup_permille = 77;
  c.plan.delayed_wakeup_us = 88;
  c.plan.max_faults = 9;

  FaultSweepCase back;
  std::string error;
  ASSERT_TRUE(parse_fault_case(to_config_string(c), &back, &error)) << error;
  EXPECT_EQ(back, c);
}

TEST(FaultSweepConfig, RejectsMalformedInput) {
  FaultSweepCase c;
  std::string error;
  EXPECT_FALSE(parse_fault_case("no_such_key 1\n", &c, &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(parse_fault_case("seed banana\n", &c, &error));
  EXPECT_NE(error.find("not a number"), std::string::npos);
  EXPECT_FALSE(parse_fault_case("protocol vaporware\n", &c, &error));
  EXPECT_NE(error.find("unknown protocol"), std::string::npos);
  EXPECT_FALSE(parse_fault_case("crash_point nowhere\n", &c, &error));
  EXPECT_NE(error.find("unknown crash point"), std::string::npos);
  EXPECT_FALSE(parse_fault_case("seed 1 2\n", &c, &error));
  // Comments and blank lines are fine.
  EXPECT_TRUE(parse_fault_case("# comment\n\n  seed 5\n", &c, &error))
      << error;
  EXPECT_EQ(c.plan.seed, 5u);
}

TEST(FaultSweep, EnumeratesTheFullGrid) {
  const auto cases = enumerate_fault_cases();
  // 5 crash placements (none + 4 pipeline stages) x 5 mixes x 2 protocols
  // x 4 seeds.
  EXPECT_EQ(cases.size(), 200u);
  // No two cells share a decision stream.
  std::set<std::uint64_t> seeds;
  for (const auto& c : cases) seeds.insert(c.plan.seed);
  EXPECT_EQ(seeds.size(), cases.size());
}

TEST(FaultSweep, EveryConfigurationCertifiesCleanAfterCrashRecover) {
  const FaultSweepSummary summary = run_fault_sweep();
  EXPECT_EQ(summary.cases, 200u);
  std::string report;
  for (const auto& f : summary.failures) {
    report += "---- failing config ----\n" + to_config_string(f.config) +
              f.failure + "\n";
  }
  EXPECT_TRUE(summary.all_ok()) << report;
  // The sweep genuinely exercised the fault machinery: pinned crashes
  // fired mid-workload and probabilistic faults were injected.
  EXPECT_GT(summary.crashed_mid_run, 0u);
  EXPECT_GT(summary.faults_injected, 0u);
  EXPECT_GT(summary.committed, 0u);
}

TEST(FaultSweep, OccAndMvccComeThroughTheSweepClean) {
  // The optimistic modes against the same crash-point grid the
  // data-dependent protocols face: versioned storage must recover from
  // the timestamp-sorted stable log, and serial validation must never
  // leave a half-admitted record behind a crash. Separate from the
  // default sweep so its 200-case shape stays pinned.
  FaultSweepOptions options;
  options.protocols = {Protocol::kOcc, Protocol::kMvcc};
  options.seeds_per_cell = 2;
  const FaultSweepSummary summary = run_fault_sweep(options);
  // 5 crash placements x 5 mixes x 2 protocols x 2 seeds.
  EXPECT_EQ(summary.cases, 100u);
  std::string report;
  for (const auto& f : summary.failures) {
    report += "---- failing config ----\n" + to_config_string(f.config) +
              f.failure + "\n";
  }
  EXPECT_TRUE(summary.all_ok()) << report;
  EXPECT_GT(summary.crashed_mid_run, 0u);
  EXPECT_GT(summary.committed, 0u);
}

TEST(FaultSweep, OccReplayIsByteForByteToo) {
  FaultSweepCase c;
  c.protocol = Protocol::kOcc;
  c.plan.seed = 7654321;
  c.plan.force_fail_permille = 120;
  c.plan.force_max_retries = 2;
  c.plan.force_retry_backoff_us = 10;
  c.plan.torn_batch_permille = 150;
  c.plan.crash_point = FaultSite::kMidApply;
  c.plan.crash_at_arrival = 1;

  const FaultCaseResult first = run_fault_case(c);
  const FaultCaseResult second = run_fault_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.committed, second.committed);
}

TEST(FaultSweep, ReplayingASeedReproducesTheTraceByteForByte) {
  // The chaos mix with a mid-apply pinned crash — the nastiest cell.
  FaultSweepCase c;
  c.protocol = Protocol::kDynamic;
  c.plan.seed = 1234567;
  c.plan.force_fail_permille = 120;
  c.plan.force_max_retries = 2;
  c.plan.force_retry_backoff_us = 10;
  c.plan.torn_batch_permille = 150;
  c.plan.leader_latency_permille = 100;
  c.plan.leader_latency_us = 50;
  c.plan.crash_point = FaultSite::kMidApply;
  c.plan.crash_at_arrival = 1;

  const FaultCaseResult first = run_fault_case(c);
  const FaultCaseResult second = run_fault_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.log_records, second.log_records);
}

TEST(FaultSweep, MinimizeFindsTheSmallestReproducingBudget) {
  // Stand-in failure predicate: "at least three faults were injected".
  // Monotone in the budget, so the bisection must land exactly on 3.
  FaultSweepCase c;
  c.plan.seed = 99;
  c.plan.torn_batch_permille = 600;
  c.plan.force_fail_permille = 200;
  c.plan.force_max_retries = 1;
  c.plan.force_retry_backoff_us = 1;

  const auto full = run_fault_case(c);
  ASSERT_GE(full.faults_injected, 3u) << "pick a hotter seed";
  const auto still_fails = [](const FaultSweepCase& probe) {
    return run_fault_case(probe).faults_injected >= 3;
  };
  const FaultSweepCase minimized = minimize_fault_budget(c, still_fails);
  EXPECT_EQ(minimized.plan.max_faults, 3u);
  EXPECT_TRUE(still_fails(minimized));
}

TEST(FaultSweep, MinimizeReturnsZeroWhenNoFaultsAreNeeded) {
  FaultSweepCase c;
  c.plan.seed = 5;
  c.plan.torn_batch_permille = 500;
  const auto always_fails = [](const FaultSweepCase&) { return true; };
  const FaultSweepCase minimized = minimize_fault_budget(c, always_fails);
  EXPECT_EQ(minimized.plan.max_faults, 0u);
}

}  // namespace
}  // namespace argus
