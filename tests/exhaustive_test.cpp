// Exhaustive small-scale verification (no sampling): enumerate *every*
// interleaving of two fixed transactions and check, for each one,
//
//   * the protocol-admission hierarchy 2PL ⊆ comm-lock ⊆ dynamic,
//   * that dynamic atomicity implies atomicity,
//   * and that the admission predicates agree with hand-derivable facts
//     (counts of admitted interleavings per protocol).
//
// This complements the sampled property tests: at this size the claims
// are checked over the full space, not a random subset.
#include <gtest/gtest.h>

#include <functional>

#include "check/admission.h"
#include "check/atomicity.h"
#include "hist/wellformed.h"
#include "spec/adts/bank_account.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

/// All merges of two event sequences (preserving each one's order), with
/// the callback invoked per merge.
void enumerate_interleavings(
    const std::vector<Event>& lhs, const std::vector<Event>& rhs,
    std::vector<Event>& prefix, std::size_t i, std::size_t j,
    const std::function<void(const History&)>& yield) {
  if (i == lhs.size() && j == rhs.size()) {
    yield(History(prefix));
    return;
  }
  if (i < lhs.size()) {
    prefix.push_back(lhs[i]);
    enumerate_interleavings(lhs, rhs, prefix, i + 1, j, yield);
    prefix.pop_back();
  }
  if (j < rhs.size()) {
    prefix.push_back(rhs[j]);
    enumerate_interleavings(lhs, rhs, prefix, i, j + 1, yield);
    prefix.pop_back();
  }
}

struct Counts {
  int total{0};
  int well_formed{0};
  int atomic{0};
  int dynamic_atomic{0};
  int admitted_2pl{0};
  int admitted_comm{0};
  int admitted_dynamic{0};
};

Counts sweep(const SystemSpec& sys, const std::vector<Event>& a_events,
             const std::vector<Event>& b_events) {
  Counts counts;
  std::vector<Event> prefix;
  enumerate_interleavings(
      a_events, b_events, prefix, 0, 0, [&](const History& h) {
        ++counts.total;
        if (!check_well_formed(h).ok()) return;
        ++counts.well_formed;
        const bool atomic = check_atomic(sys, h).ok;
        const bool dynamic = check_dynamic_atomic(sys, h).ok;
        const bool p2pl = admitted_by_two_phase_locking(sys, h);
        const bool comm = admitted_by_commutativity_locking(sys, h);
        counts.atomic += atomic ? 1 : 0;
        counts.dynamic_atomic += dynamic ? 1 : 0;
        counts.admitted_2pl += p2pl ? 1 : 0;
        counts.admitted_comm += comm ? 1 : 0;
        counts.admitted_dynamic += dynamic ? 1 : 0;

        // Hierarchy, pointwise over the whole space.
        if (p2pl) {
          EXPECT_TRUE(comm) << h.to_string();
        }
        if (comm) {
          EXPECT_TRUE(dynamic) << h.to_string();
        }
        if (dynamic) {
          EXPECT_TRUE(atomic) << h.to_string();
        }
      });
  return counts;
}

TEST(Exhaustive, CommutingInsertsEverythingAdmitsExcept2PL) {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  const std::vector<Event> ta = {
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      commit(X, A),
  };
  const std::vector<Event> tb = {
      invoke(X, B, op("insert", 2)),
      respond(X, B, ok()),
      commit(X, B),
  };
  const Counts c = sweep(sys, ta, tb);
  // C(6,3) = 20 merges, all well-formed.
  EXPECT_EQ(c.total, 20);
  EXPECT_EQ(c.well_formed, 20);
  // Inserting distinct elements commutes: every interleaving is dynamic
  // atomic and admitted by commutativity locking.
  EXPECT_EQ(c.atomic, 20);
  EXPECT_EQ(c.dynamic_atomic, 20);
  EXPECT_EQ(c.admitted_comm, 20);
  // 2PL admits only interleavings where the write locks don't overlap:
  // one transaction's invoke..commit window must not contain the other's
  // invoke.
  EXPECT_LT(c.admitted_2pl, 20);
  EXPECT_GT(c.admitted_2pl, 0);
}

TEST(Exhaustive, ObserverVersusMutatorSameElement) {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  const std::vector<Event> ta = {
      invoke(X, A, op("member", 1)),
      respond(X, A, Value{false}),
      commit(X, A),
  };
  const std::vector<Event> tb = {
      invoke(X, B, op("insert", 1)),
      respond(X, B, ok()),
      commit(X, B),
  };
  const Counts c = sweep(sys, ta, tb);
  EXPECT_EQ(c.well_formed, 20);
  // member(1)=false is consistent in any interleaving (serialize a
  // first), so all are atomic...
  EXPECT_EQ(c.atomic, 20);
  // ...but NOT all dynamic atomic: once b commits before a's response,
  // precedes pins b<a, and member(1)=false contradicts it.
  EXPECT_LT(c.dynamic_atomic, 20);
  // The locking protocols conflict on the same element: strictly fewer.
  EXPECT_LE(c.admitted_comm, c.dynamic_atomic);
  EXPECT_EQ(c.admitted_2pl, c.admitted_comm);  // same conflict for this pair
}

TEST(Exhaustive, CoveredWithdrawsDynamicStrictlyBeatsLocking) {
  SystemSpec sys;
  sys.add_object(Y, "bank_account");
  // Pre-established balance via a's own deposit (single-txn setup would
  // add a third activity; instead both withdraw from an account that can
  // cover either but we give A a prior deposit making both covered).
  const std::vector<Event> ta = {
      invoke(Y, A, op("deposit", 10)),
      respond(Y, A, ok()),
      invoke(Y, A, op("withdraw", 4)),
      respond(Y, A, ok()),
      commit(Y, A),
  };
  const std::vector<Event> tb = {
      invoke(Y, B, op("withdraw", 3)),
      respond(Y, B, Value{kInsufficientFunds}),
      commit(Y, B),
  };
  const Counts c = sweep(sys, ta, tb);
  EXPECT_EQ(c.well_formed, c.total);
  // b's withdraw fails, so it serializes before a's deposit; dynamic
  // atomicity admits strictly more interleavings than the conflict
  // tables (which serialize deposit/withdraw pairs).
  EXPECT_GT(c.dynamic_atomic, c.admitted_comm);
  EXPECT_GE(c.admitted_comm, c.admitted_2pl);
}

TEST(Exhaustive, EqualEnqueuesBeyondConflictTables) {
  SystemSpec sys;
  sys.add_object(X, "fifo_queue");
  const std::vector<Event> ta = {
      invoke(X, A, op("enqueue", 7)),
      respond(X, A, ok()),
      commit(X, A),
  };
  const std::vector<Event> tb = {
      invoke(X, B, op("enqueue", 7)),
      respond(X, B, ok()),
      commit(X, B),
  };
  const Counts c = sweep(sys, ta, tb);
  // Equal values: everything is dynamic atomic AND comm-lock admits all
  // (the table is argument-sensitive), while 2PL still serializes.
  EXPECT_EQ(c.dynamic_atomic, c.well_formed);
  EXPECT_EQ(c.admitted_comm, c.well_formed);
  EXPECT_LT(c.admitted_2pl, c.well_formed);
}

TEST(Exhaustive, DistinctEnqueuesConflictEverywhere) {
  SystemSpec sys;
  sys.add_object(X, "fifo_queue");
  const std::vector<Event> ta = {
      invoke(X, A, op("enqueue", 1)),
      respond(X, A, ok()),
      commit(X, A),
  };
  const std::vector<Event> tb = {
      invoke(X, B, op("enqueue", 2)),
      respond(X, B, ok()),
      commit(X, B),
  };
  const Counts c = sweep(sys, ta, tb);
  // Without observers both orders remain open: all interleavings are
  // dynamic atomic (enqueue results don't expose the order)...
  EXPECT_EQ(c.dynamic_atomic, c.well_formed);
  // ...but comm-lock conflicts (enqueue(1) vs enqueue(2)): strictly
  // fewer, equal to 2PL's count for this pair.
  EXPECT_LT(c.admitted_comm, c.well_formed);
  EXPECT_EQ(c.admitted_comm, c.admitted_2pl);
}

}  // namespace
}  // namespace argus
