// The CC-mode executor tier (ctest -L ccmodes), part 1: the pieces.
//
//   * TxnExecutor — the fixed worker pool: every submitted task runs to
//     completion, stats add up, shutdown is clean and final;
//   * OCC objects — invocations never block, commit-time validation
//     enforces first-committer-wins on write-write races, losers abort
//     with AbortReason::kValidation and retry cleanly;
//   * MVCC objects — read-only transactions read an initiation-time
//     snapshot (no stale or torn reads, no blocking, no aborts) while
//     updates validate like OCC;
//   * retry-limit exhaustion — a task that can never commit gives up
//     after exactly max_retries+1 attempts and leaves the runtime
//     healthy;
//   * telemetry gating — lock-mode-only series (deadlocks resolved,
//     object waits) disappear under OCC/MVCC; argus_executor_* appears
//     once a pool has run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "check/atomicity.h"
#include "hist/wellformed.h"
#include "sched/executor.h"
#include "sched/factory.h"
#include "spec/adts/bank_account.h"
#include "test_util.h"

namespace argus {
namespace {

ExecutorOptions pool_of(int workers) {
  ExecutorOptions options;
  options.workers = workers;
  return options;
}

// ---------------------------------------------------------------------------
// The pool

TEST(TxnExecutor, RunsEverySubmittedTaskAndStatsAddUp) {
  Runtime rt(/*record_history=*/false);
  auto acct = rt.create_dynamic<BankAccountAdt>("a");

  ExecutorOptions options;
  options.workers = 3;
  TxnExecutor pool(rt, options);
  constexpr int kTasks = 40;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit({"deposit", TxnKind::kUpdate,
                 [&acct](Transaction& txn, SplitMix64&) {
                   acct->invoke(txn, account::deposit(1));
                 },
                 static_cast<std::uint64_t>(i)});
  }
  pool.drain();
  const ExecutorStatsSnapshot stats = pool.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.committed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.workers, 3);

  pool.shutdown();
  EXPECT_EQ(pool.stats().workers, 0);
  EXPECT_THROW(pool.submit({"late", TxnKind::kUpdate,
                            [](Transaction&, SplitMix64&) {}, 0}),
               UsageError);

  auto t = rt.begin();
  EXPECT_EQ(acct->invoke(*t, account::balance()).as_int(), kTasks);
  rt.commit(t);
}

TEST(TxnExecutor, CompletionCallbackSeesEveryOutcome) {
  Runtime rt(/*record_history=*/false);
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  std::atomic<int> outcomes{0};
  std::atomic<int> committed{0};
  TxnExecutor pool(rt, pool_of(2),
                   [&](const TxnExecutor::Outcome& out) {
                     ++outcomes;
                     if (out.committed) ++committed;
                     EXPECT_EQ(out.label, "d");
                     EXPECT_GE(out.attempts, 1u);
                   });
  for (int i = 0; i < 10; ++i) {
    pool.submit({"d", TxnKind::kUpdate,
                 [&acct](Transaction& txn, SplitMix64&) {
                   acct->invoke(txn, account::deposit(1));
                 },
                 static_cast<std::uint64_t>(i)});
  }
  pool.drain();
  EXPECT_EQ(outcomes.load(), 10);
  EXPECT_EQ(committed.load(), 10);
}

TEST(TxnExecutor, RejectsAnEmptyPool) {
  Runtime rt(/*record_history=*/false);
  EXPECT_THROW(TxnExecutor(rt, pool_of(0)), UsageError);
}

// ---------------------------------------------------------------------------
// OCC: never block, validate at commit, first committer wins

TEST(OccObject, InvocationsNeverBlockOnConcurrentWriters) {
  Runtime rt(/*record_history=*/true);
  rt.set_cc_mode(CCMode::kOcc);
  auto x = rt.create_occ<BankAccountAdt>("x");

  auto a = rt.begin();
  x->invoke(*a, account::deposit(100));
  // Under the locking protocols this second invocation would block until
  // `a` resolves; the optimistic object answers immediately from the
  // committed state.
  auto b = rt.begin();
  EXPECT_EQ(x->invoke(*b, account::balance()).as_int(), 0);
  rt.commit(a);
  // b's recorded read (balance = 0) is now stale: first committer won.
  try {
    rt.commit(b);
    FAIL() << "stale reader must lose validation";
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kValidation);
  }
}

TEST(OccObject, FirstCommitterWinsUnderWriteWriteRaces) {
  Runtime rt(/*record_history=*/true);
  rt.set_cc_mode(CCMode::kOcc);
  auto x = rt.create_occ<BankAccountAdt>("x");
  {
    auto setup = rt.begin();
    x->invoke(*setup, account::deposit(100));
    rt.commit(setup);
  }

  // Both transactions see 100 of headroom and both withdrawals succeed
  // optimistically; only one can be right.
  auto a = rt.begin();
  auto b = rt.begin();
  EXPECT_EQ(x->invoke(*a, account::withdraw(60)), ok());
  EXPECT_EQ(x->invoke(*b, account::withdraw(60)), ok());

  rt.commit(a);  // first committer wins
  try {
    rt.commit(b);
    FAIL() << "second committer must lose validation";
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kValidation);
  }

  // The loser's retry sees the truth and takes the other branch.
  auto c = rt.begin();
  EXPECT_NE(x->invoke(*c, account::withdraw(60)), ok());
  rt.commit(c);
  EXPECT_EQ(x->committed_state(), 40);
}

TEST(OccObject, NonConflictingCommitsBothSucceed) {
  Runtime rt(/*record_history=*/true);
  rt.set_cc_mode(CCMode::kOcc);
  auto x = rt.create_occ<BankAccountAdt>("x");

  // Two blind deposits: replay-based validation accepts the loser too,
  // because its recorded results hold in any order (the same insight the
  // paper's data-dependent admission exploits).
  auto a = rt.begin();
  auto b = rt.begin();
  x->invoke(*a, account::deposit(5));
  x->invoke(*b, account::deposit(7));
  rt.commit(a);
  rt.commit(b);
  EXPECT_EQ(x->committed_state(), 12);
}

TEST(OccObject, HistoryIsHybridAtomic) {
  Runtime rt(/*record_history=*/true);
  rt.set_cc_mode(CCMode::kOcc);
  auto x = rt.create_occ<BankAccountAdt>("x");

  auto a = rt.begin();
  auto b = rt.begin();
  x->invoke(*a, account::deposit(10));
  x->invoke(*b, account::deposit(20));
  rt.commit(b);
  rt.commit(a);
  auto c = rt.begin();
  x->invoke(*c, account::withdraw(25));
  rt.commit(c);

  const History h = rt.history();
  const auto wf = check_well_formed_hybrid(h, {});
  ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
  const auto verdict = check_hybrid_atomic(rt.system(), h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
}

// ---------------------------------------------------------------------------
// MVCC: snapshot reads

TEST(MvccObject, ReadOnlySnapshotPreventsStaleAndTornReads) {
  Runtime rt(/*record_history=*/true);
  rt.set_cc_mode(CCMode::kMvcc);
  auto x = rt.create_mvcc<BankAccountAdt>("x");
  {
    auto setup = rt.begin();
    x->invoke(*setup, account::deposit(100));
    rt.commit(setup);
  }

  auto reader = rt.begin_read_only();
  EXPECT_EQ(x->invoke(*reader, account::balance()).as_int(), 100);

  // A concurrent update commits between the reader's two reads.
  {
    auto writer = rt.begin();
    x->invoke(*writer, account::deposit(50));
    rt.commit(writer);
  }

  // The snapshot pins the reader at its initiation timestamp: it must
  // NOT see the later commit (that would be a non-repeatable read), and
  // it commits without validation — read-only is abort-free.
  EXPECT_EQ(x->invoke(*reader, account::balance()).as_int(), 100);
  rt.commit(reader);

  auto after = rt.begin_read_only();
  EXPECT_EQ(x->invoke(*after, account::balance()).as_int(), 150);
  rt.commit(after);

  const History h = rt.history();
  // Reader + after were the two read-only activities (ids 1 and 3).
  const auto wf = check_well_formed_hybrid(h, {ActivityId{1}, ActivityId{3}});
  ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
  const auto verdict = check_hybrid_atomic(rt.system(), h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
}

TEST(MvccObject, ReadOnlyRejectsMutators) {
  Runtime rt(/*record_history=*/false);
  rt.set_cc_mode(CCMode::kMvcc);
  auto x = rt.create_mvcc<BankAccountAdt>("x");
  auto reader = rt.begin_read_only();
  EXPECT_THROW(x->invoke(*reader, account::deposit(1)), UsageError);
  rt.abort(reader);
}

TEST(MvccObject, UpdatesStillValidateLikeOcc) {
  Runtime rt(/*record_history=*/false);
  rt.set_cc_mode(CCMode::kMvcc);
  auto x = rt.create_mvcc<BankAccountAdt>("x");
  {
    auto setup = rt.begin();
    x->invoke(*setup, account::deposit(100));
    rt.commit(setup);
  }
  auto a = rt.begin();
  auto b = rt.begin();
  EXPECT_EQ(x->invoke(*a, account::withdraw(80)), ok());
  EXPECT_EQ(x->invoke(*b, account::withdraw(80)), ok());
  rt.commit(a);
  EXPECT_THROW(rt.commit(b), TransactionAborted);
  EXPECT_EQ(x->committed_state(), 20);
}

// ---------------------------------------------------------------------------
// Retry exhaustion

TEST(TxnExecutor, RetryExhaustionGivesUpCleanly) {
  Runtime rt(/*record_history=*/false);
  rt.set_cc_mode(CCMode::kOcc);
  auto x = rt.create_occ<BankAccountAdt>("x");

  ExecutorOptions options;
  options.workers = 1;
  options.max_retries = 3;
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> gave_up_outcomes{0};
  TxnExecutor pool(rt, options, [&](const TxnExecutor::Outcome& out) {
    attempts += out.attempts;
    if (!out.committed) ++gave_up_outcomes;
  });
  // A task that can never commit: it always asks to be aborted.
  pool.submit({"doomed", TxnKind::kUpdate,
               [](Transaction& txn, SplitMix64&) {
                 throw TransactionAborted(txn.id(), AbortReason::kUser);
               },
               1});
  pool.drain();

  EXPECT_EQ(attempts.load(), 4u);  // 1 first try + max_retries
  EXPECT_EQ(gave_up_outcomes.load(), 1u);
  const ExecutorStatsSnapshot stats = pool.stats();
  EXPECT_EQ(stats.gave_up, 1u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.committed, 0u);

  // Clean abort: the runtime is healthy and later work commits normally.
  pool.submit({"fine", TxnKind::kUpdate,
               [&x](Transaction& txn, SplitMix64&) {
                 x->invoke(txn, account::deposit(9));
               },
               2});
  pool.drain();
  EXPECT_EQ(pool.stats().committed, 1u);
  EXPECT_EQ(x->committed_state(), 9);
}

TEST(TxnExecutor, CountsValidationAbortsAcrossRetries) {
  Runtime rt(/*record_history=*/false);
  rt.set_cc_mode(CCMode::kOcc);
  auto x = rt.create_occ<BankAccountAdt>("x");
  {
    auto setup = rt.begin();
    x->invoke(*setup, account::deposit(1000));
    rt.commit(setup);
  }
  // Read-modify-write contention: every transaction reads the balance
  // then withdraws, so concurrent committers invalidate each other and
  // the losers funnel through the executor's retry loop.
  TxnExecutor pool(rt, pool_of(4));
  for (int i = 0; i < 60; ++i) {
    pool.submit({"rmw", TxnKind::kUpdate,
                 [&x](Transaction& txn, SplitMix64&) {
                   (void)x->invoke(txn, account::balance());
                   // Hold the window open so committers genuinely race.
                   std::this_thread::sleep_for(
                       std::chrono::microseconds(100));
                   (void)x->invoke(txn, account::withdraw(1));
                 },
                 static_cast<std::uint64_t>(i)});
  }
  pool.drain();
  const ExecutorStatsSnapshot stats = pool.stats();
  EXPECT_EQ(stats.committed, 60u);
  EXPECT_EQ(stats.gave_up, 0u);
  // Validation losses were counted (with 4 workers racing on one object
  // some conflict is certain) and every one was retried.
  EXPECT_GT(stats.validation_aborts, 0u);
  EXPECT_GE(stats.retries, stats.validation_aborts);
  EXPECT_EQ(x->committed_state(), 1000 - 60);
}

// ---------------------------------------------------------------------------
// Telemetry gating

TEST(CCModeMetrics, LockModeSeriesSuppressedUnderOccAndMvcc) {
  for (CCMode mode : {CCMode::kOcc, CCMode::kMvcc}) {
    Runtime rt(/*record_history=*/false);
    rt.set_cc_mode(mode);
    auto x = mode == CCMode::kOcc ? rt.create_occ<BankAccountAdt>("x")
                                  : rt.create_mvcc<BankAccountAdt>("x");
    TxnExecutor pool(rt, pool_of(2));
    for (int i = 0; i < 8; ++i) {
      pool.submit({"d", TxnKind::kUpdate,
                   [&x](Transaction& txn, SplitMix64&) {
                     x->invoke(txn, account::deposit(1));
                   },
                   static_cast<std::uint64_t>(i)});
    }
    pool.drain();
    pool.shutdown();

    const std::string text = rt.metrics().prometheus_text();
    EXPECT_EQ(text.find("argus_deadlocks_resolved_total"), std::string::npos)
        << to_string(mode) << " must not emit deadlock-detector telemetry";
    EXPECT_EQ(text.find("argus_object_waits_total"), std::string::npos)
        << to_string(mode) << " objects never block";
    EXPECT_NE(text.find("argus_executor_submitted_total 8"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("argus_executor_workers 0"), std::string::npos)
        << "pool shut down, gauge must read 0";
  }
}

TEST(CCModeMetrics, LockModeSeriesStayLiveUnderBlockingModes) {
  Runtime rt(/*record_history=*/false);  // default CCMode::kDynamic
  auto x = rt.create_dynamic<BankAccountAdt>("x");
  auto t = rt.begin();
  x->invoke(*t, account::deposit(1));
  rt.commit(t);
  const std::string text = rt.metrics().prometheus_text();
  EXPECT_NE(text.find("argus_deadlocks_resolved_total"), std::string::npos);
  EXPECT_NE(text.find("argus_object_waits_total"), std::string::npos);
}

}  // namespace
}  // namespace argus
