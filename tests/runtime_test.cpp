// Runtime facade tests: object registry, recorder control, crash dooming,
// and API misuse paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/runtime.h"
#include "hist/parse.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/int_set.h"
#include "test_util.h"

namespace argus {
namespace {

TEST(Runtime, ObjectRegistryLookup) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  EXPECT_EQ(rt.object(set->id()), set);
  EXPECT_EQ(rt.objects().size(), 1u);
  EXPECT_THROW((void)rt.object(ObjectId{999}), UsageError);
}

TEST(Runtime, AdoptRejectsDuplicateIds) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  EXPECT_THROW(rt.adopt(set, std::make_shared<AdtSpec<IntSetAdt>>()),
               UsageError);
}

TEST(Runtime, SystemSpecMirrorsObjects) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto acct = rt.create_static<BankAccountAdt>("a");
  EXPECT_TRUE(rt.system().has(set->id()));
  EXPECT_TRUE(rt.system().has(acct->id()));
  EXPECT_EQ(rt.system().spec_of(set->id()).type_name(), "int_set");
  EXPECT_EQ(rt.system().spec_of(acct->id()).type_name(), "bank_account");
}

TEST(Runtime, RecordingDisabledYieldsEmptyHistory) {
  Runtime rt(/*record_history=*/false);
  EXPECT_EQ(rt.recorder(), nullptr);
  EXPECT_FALSE(rt.recording());
  EXPECT_EQ(rt.recorder_mode(), Runtime::RecorderMode::kOff);
  EXPECT_EQ(rt.flight_recorder(), nullptr);
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t = rt.begin();
  set->invoke(*t, intset::insert(1));
  rt.commit(t);
  // history() is explicitly empty with capture off — no recorder exists,
  // so nothing was ever captured (recording() distinguishes this from a
  // recording runtime that merely has no events yet).
  EXPECT_TRUE(rt.history().empty());
}

TEST(Runtime, RecorderModesSelectSink) {
  Runtime flight(Runtime::RecorderMode::kFlight);
  EXPECT_TRUE(flight.recording());
  EXPECT_NE(flight.recorder(), nullptr);
  EXPECT_NE(flight.flight_recorder(), nullptr);
  EXPECT_EQ(flight.recorder(), flight.flight_recorder());

  Runtime legacy(Runtime::RecorderMode::kLegacyMutex);
  EXPECT_TRUE(legacy.recording());
  EXPECT_NE(legacy.recorder(), nullptr);
  EXPECT_EQ(legacy.flight_recorder(), nullptr);
  auto set = legacy.create_dynamic<IntSetAdt>("s");
  auto t = legacy.begin();
  set->invoke(*t, intset::insert(1));
  legacy.commit(t);
  EXPECT_EQ(legacy.history().size(), 3u);
}

TEST(Runtime, MetricsExposeTxnAndObjectCounters) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t = rt.begin();
  set->invoke(*t, intset::insert(1));
  rt.commit(t);
  auto t2 = rt.begin();
  set->invoke(*t2, intset::insert(2));
  rt.abort(t2);

  const std::string text = rt.metrics().prometheus_text();
  EXPECT_NE(text.find("argus_txn_begun_total 2"), std::string::npos);
  EXPECT_NE(text.find("argus_txn_committed_total 1"), std::string::npos);
  EXPECT_NE(text.find("argus_txn_aborted_total{reason=\"user\"} 1"),
            std::string::npos) << text;
  EXPECT_NE(text.find("argus_object_invocations_total{object=\"s\"} 2"),
            std::string::npos) << text;
  EXPECT_NE(text.find("argus_recorder_events_total"), std::string::npos);
  EXPECT_NE(rt.metrics().json().find("argus_commit_pipeline_commits_total"),
            std::string::npos);
}

TEST(Runtime, CrashDumpWritesReplayableTail) {
  const std::string path = ::testing::TempDir() + "argus_crash_dump.txt";
  Runtime rt(Runtime::RecorderMode::kFlight,
             FlightRecorderOptions{.shard_capacity = 64});
  rt.set_crash_dump(path, 16);
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t = rt.begin();
  set->invoke(*t, intset::insert(1));
  rt.commit(t);
  rt.crash();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const ParseResult parsed = parse_history(buffer.str());
  ASSERT_TRUE(parsed.history.has_value()) << parsed.error;
  EXPECT_EQ(parsed.history->size(), 3u);  // invoke + respond + commit
  std::remove(path.c_str());
}

TEST(Runtime, RecordingEnabledCapturesEverything) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t = rt.begin();
  set->invoke(*t, intset::insert(1));
  rt.commit(t);
  // invoke + respond + commit.
  EXPECT_EQ(rt.history().size(), 3u);
}

TEST(Runtime, ObjectIdsAreSequentialAndDistinct) {
  Runtime rt;
  auto a = rt.create_dynamic<IntSetAdt>("a");
  auto b = rt.create_static<IntSetAdt>("b");
  auto c = rt.create_hybrid<IntSetAdt>("c");
  EXPECT_NE(a->id(), b->id());
  EXPECT_NE(b->id(), c->id());
  EXPECT_EQ(a->name(), "a");
  EXPECT_EQ(b->name(), "b");
  EXPECT_EQ(c->name(), "c");
}

TEST(Runtime, CrashDoomsOnlyActive) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto done = rt.begin();
  set->invoke(*done, intset::insert(1));
  rt.commit(done);
  auto active = rt.begin();
  set->invoke(*active, intset::insert(2));
  rt.crash();
  EXPECT_TRUE(active->doomed());
  EXPECT_EQ(active->doom_reason(), AbortReason::kCrash);
  EXPECT_EQ(done->state(), TxnState::kCommitted);
  rt.abort(active);
  rt.recover();
  EXPECT_TRUE(set->committed_state().contains(1));
  EXPECT_FALSE(set->committed_state().contains(2));
}

TEST(Runtime, RecoverWithEmptyLogResetsToInitial) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  rt.recover();  // nothing committed
  EXPECT_TRUE(set->committed_state().empty());
}

TEST(Runtime, WaitTimeoutAllPropagates) {
  Runtime rt;
  auto q = rt.create_dynamic<IntSetAdt>("s");
  rt.set_wait_timeout_all(std::chrono::milliseconds(30));
  // Create a permanent conflict: t2 must time out quickly.
  auto t1 = rt.begin();
  q->invoke(*t1, intset::insert(1));
  auto t2 = rt.begin();
  const auto start = std::chrono::steady_clock::now();
  try {
    q->invoke(*t2, intset::member(1));
    FAIL() << "expected timeout abort";
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kWaitTimeout);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(2000));
  rt.abort(t2);
  rt.abort(t1);
}

TEST(Runtime, BeginReadOnlyConvenience) {
  Runtime rt;
  auto t = rt.begin_read_only();
  EXPECT_TRUE(t->read_only());
  rt.abort(t);
}

}  // namespace
}  // namespace argus
