// Tests for the simulation layer: metrics aggregation, workload driver
// behaviour (weights, retries, skew), and the prebuilt scenarios.
#include <gtest/gtest.h>

#include "sim/scenarios.h"
#include "sim/workload.h"
#include "spec/adts/bank_account.h"
#include "test_util.h"

namespace argus {
namespace {

TEST(LatencyStats, BasicAggregation) {
  LatencyStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.percentile(0.5), 0.0);
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 2.5);
}

TEST(LatencyStats, Merge) {
  LatencyStats a;
  LatencyStats b;
  a.add(1.0);
  a.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(LatencyStats, ReservoirRetainsLateObservations) {
  // The first-N truncation this replaced kept only the earliest kSampleCap
  // observations, so percentiles of a long run reflected warm-up only.
  // Under Algorithm R every observation has equal retention probability:
  // after 2x cap increasing values, the sample must contain second-half
  // values, so the top percentile lands far above the cap boundary.
  LatencyStats stats;
  const auto n = 2 * LatencyStats::kSampleCap;
  for (std::size_t i = 0; i < n; ++i) stats.add(static_cast<double>(i));
  EXPECT_EQ(stats.count(), n);
  EXPECT_DOUBLE_EQ(stats.mean(), static_cast<double>(n - 1) / 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), static_cast<double>(n - 1));
  EXPECT_GT(stats.percentile(1.0),
            static_cast<double>(LatencyStats::kSampleCap));
  // And the retained sample stays representative: the median of uniform
  // 0..n-1 is near n/2, which first-N truncation would report as ~cap/2.
  EXPECT_NEAR(stats.percentile(0.5), static_cast<double>(n) / 2.0,
              static_cast<double>(n) * 0.05);
}

TEST(LatencyStats, MergeOfOverCapStreamsKeepsBothPopulations) {
  LatencyStats a;
  LatencyStats b;
  const auto n = LatencyStats::kSampleCap + LatencyStats::kSampleCap / 2;
  for (std::size_t i = 0; i < n; ++i) a.add(100.0);
  for (std::size_t i = 0; i < n; ++i) b.add(200.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2 * n);
  EXPECT_DOUBLE_EQ(a.mean(), 150.0);  // exact: totals merge outside the sample
  // Equal-weight sides: the merged reservoir holds roughly half of each,
  // so the outer quartiles expose both populations.
  EXPECT_DOUBLE_EQ(a.percentile(0.25), 100.0);
  EXPECT_DOUBLE_EQ(a.percentile(0.75), 200.0);
}

TEST(WorkloadResult, DerivedMetrics) {
  WorkloadResult r;
  r.seconds = 2.0;
  r.committed = 100;
  r.aborted = 50;
  EXPECT_DOUBLE_EQ(r.throughput(), 50.0);
  EXPECT_DOUBLE_EQ(r.abort_rate(), 50.0 / 150.0);
  r.aborts_by_reason[AbortReason::kDeadlock] = 50;
  const std::string s = r.summary();
  EXPECT_NE(s.find("committed=100"), std::string::npos);
  EXPECT_NE(s.find("aborts by reason"), std::string::npos);
  EXPECT_NE(s.find("deadlock"), std::string::npos);
  EXPECT_NE(s.find("50"), std::string::npos);
}

TEST(WorkloadResult, ZeroDivisionSafe) {
  WorkloadResult r;
  EXPECT_DOUBLE_EQ(r.throughput(), 0.0);
  EXPECT_DOUBLE_EQ(r.abort_rate(), 0.0);
}

TEST(WorkloadDriver, WeightsRoughlyRespected) {
  Runtime rt(false);
  auto bank = BankScenario::create(rt, Protocol::kDynamic, 4, 1000);
  WorkloadOptions options;
  options.threads = 2;
  options.transactions_per_thread = 200;
  options.seed = 17;
  WorkloadDriver driver(rt, options);
  const auto result =
      driver.run({bank.transfer_mix(1, 3), bank.audit_mix(false, 1)});
  ASSERT_TRUE(result.by_label.contains("transfer"));
  ASSERT_TRUE(result.by_label.contains("audit"));
  const double transfers =
      static_cast<double>(result.by_label.at("transfer").committed);
  const double audits =
      static_cast<double>(result.by_label.at("audit").committed);
  // 3:1 weights; allow generous sampling slack.
  EXPECT_GT(transfers / audits, 1.8);
  EXPECT_LT(transfers / audits, 5.0);
}

TEST(WorkloadDriver, DeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    Runtime rt(false);
    auto bank = BankScenario::create(rt, Protocol::kDynamic, 2, 100);
    WorkloadOptions options;
    options.threads = 1;  // single thread: fully deterministic
    options.transactions_per_thread = 50;
    options.seed = seed;
    WorkloadDriver driver(rt, options);
    const auto result = driver.run({bank.transfer_mix(3, 1)});
    return bank.total_balance(rt, false);
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

TEST(BankScenario, SetupDepositsInitialBalance) {
  Runtime rt(false);
  auto bank = BankScenario::create(rt, Protocol::kDynamic, 3, 250);
  EXPECT_EQ(bank.accounts.size(), 3u);
  EXPECT_EQ(bank.total_balance(rt, false), 750);
}

TEST(BankScenario, TransferPreservesTotal) {
  Runtime rt(false);
  auto bank = BankScenario::create(rt, Protocol::kDynamic, 2, 100);
  auto mix = bank.transfer_mix(10, 1);
  SplitMix64 rng(3);
  for (int i = 0; i < 20; ++i) {
    auto t = rt.begin();
    mix.body(*t, rng);
    rt.commit(t);
  }
  EXPECT_EQ(bank.total_balance(rt, false), 200);
}

TEST(QueueScenario, HybridUsesTypeSpecificQueue) {
  Runtime rt(false);
  auto scenario = QueueScenario::create(rt, Protocol::kHybrid);
  EXPECT_NE(std::dynamic_pointer_cast<HybridFifoQueue>(scenario.queue),
            nullptr);
  auto generic = QueueScenario::create(rt, Protocol::kDynamic, "q2");
  EXPECT_EQ(std::dynamic_pointer_cast<HybridFifoQueue>(generic.queue),
            nullptr);
}

TEST(QueueScenario, ProducerConsumerBodies) {
  Runtime rt(false);
  auto scenario = QueueScenario::create(rt, Protocol::kHybrid);
  SplitMix64 rng(1);
  auto t1 = rt.begin();
  scenario.producer_mix(3, 1).body(*t1, rng);
  rt.commit(t1);
  auto t2 = rt.begin();
  scenario.consumer_mix(3, 1).body(*t2, rng);
  rt.commit(t2);
  auto q = std::dynamic_pointer_cast<HybridFifoQueue>(scenario.queue);
  EXPECT_TRUE(q->committed_items().empty());
}

TEST(AccountScenario, BurstMixHoldsTransactionOpen) {
  Runtime rt(false);
  auto scenario = AccountScenario::create(rt, Protocol::kDynamic, 100);
  SplitMix64 rng(1);
  auto t = rt.begin();
  scenario.withdraw_burst_mix(1, 5, 0, 1).body(*t, rng);
  rt.commit(t);
  auto check = rt.begin();
  EXPECT_EQ(scenario.account->invoke(*check, account::balance()), Value{95});
  rt.commit(check);
}

TEST(WorkloadDriver, TimestampSkewOptionRuns) {
  Runtime rt(false);
  auto bank = BankScenario::create(rt, Protocol::kStatic, 2, 100);
  WorkloadOptions options;
  options.threads = 2;
  options.transactions_per_thread = 10;
  options.timestamp_skew_us = 100;
  WorkloadDriver driver(rt, options);
  const auto result = driver.run({bank.transfer_mix(1, 1)});
  EXPECT_EQ(result.gave_up, 0u);
  EXPECT_EQ(bank.total_balance(rt, true), 200);
}

}  // namespace
}  // namespace argus
