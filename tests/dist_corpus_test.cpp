// Distributed corpus replay: the checked-in configurations in
// tests/corpus/dist/ pin cross-site scenarios worth keeping forever —
// mid-2PC site loss, in-doubt promotion at recovery, catch-up after
// missed replicated writes. Each must (a) certify clean through churn +
// recovery and (b) reproduce its merged cross-site trace byte for byte
// on a second run.
//
// The binary doubles as the minimization tool:
//
//   dist_corpus_test --minimize <config-file>
//
// bisects a failing config's fault budget to the smallest reproducing
// prefix and prints the shrunken config (ready to check back into the
// corpus).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/dist_sweep.h"

namespace argus {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> out;
  for (const auto& entry :
       std::filesystem::directory_iterator(ARGUS_DIST_CORPUS_DIR)) {
    if (entry.path().extension() == ".txt") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class DistCorpus : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(DistCorpus, ReplaysCleanAndByteEqual) {
  const auto path = GetParam();
  DistSweepCase c;
  std::string error;
  ASSERT_TRUE(parse_dist_case(read_file(path), &c, &error))
      << path << ": " << error;

  const DistCaseResult first = run_dist_case(c);
  EXPECT_TRUE(first.ok) << path << "\n" << first.failure;
  ASSERT_FALSE(first.trace.empty());

  const DistCaseResult second = run_dist_case(c);
  EXPECT_EQ(first.trace, second.trace)
      << path << ": same seed must reproduce the merged trace byte for byte";
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.site_fails, second.site_fails);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
}

INSTANTIATE_TEST_SUITE_P(Corpus, DistCorpus,
                         ::testing::ValuesIn(corpus_files()),
                         [](const auto& info) {
                           std::string name = info.param.stem().string();
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

TEST(DistCorpus, CorpusIsNotEmpty) { EXPECT_GE(corpus_files().size(), 3u); }

int minimize_main(const std::string& file) {
  DistSweepCase c;
  std::string error;
  if (!parse_dist_case(read_file(file), &c, &error)) {
    std::cerr << "cannot parse " << file << ": " << error << "\n";
    return 2;
  }
  const DistCaseResult full = run_dist_case(c);
  if (full.ok) {
    std::cout << "config passes (" << full.faults_injected
              << " faults injected); nothing to minimize\n";
    return 0;
  }
  std::cout << "config fails:\n" << full.failure << "\n\nminimizing over "
            << full.faults_injected << " injected faults...\n";
  const DistSweepCase minimized = minimize_dist_budget(
      c, [](const DistSweepCase& probe) { return !run_dist_case(probe).ok; });
  const DistCaseResult shrunk = run_dist_case(minimized);
  std::cout << "\nsmallest reproducing budget: max_faults "
            << minimized.plan.max_faults << " (" << shrunk.faults_injected
            << " faults injected)\n\n"
            << to_dist_config_string(minimized)
            << "\nfailure at that budget:\n"
            << shrunk.failure << "\n";
  return 1;  // the config still fails — that is the point of the tool
}

}  // namespace
}  // namespace argus

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--minimize") {
    return argus::minimize_main(argv[2]);
  }
  if (argc == 2 && std::string(argv[1]) == "--minimize") {
    std::cerr << "usage: " << argv[0] << " --minimize <config-file>\n";
    return 2;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
