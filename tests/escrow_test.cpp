// EscrowAccount protocol tests: O(1) data-dependent admission with the
// same observable behaviour as the generic dynamic object — plus the
// cases where escrow is *more* permissive (beyond the generic object's
// validation cap).
#include <gtest/gtest.h>

#include <thread>

#include "check/atomicity.h"
#include "common/rng.h"
#include "core/escrow_account.h"
#include "core/runtime.h"
#include "hist/wellformed.h"
#include "test_util.h"

namespace argus {
namespace {

std::shared_ptr<EscrowAccount> make_escrow(Runtime& rt,
                                           std::int64_t initial = 0) {
  auto obj = std::make_shared<EscrowAccount>(rt.allocate_object_id(),
                                             "escrow", rt.tm(), rt.recorder());
  rt.adopt(obj, std::make_shared<AdtSpec<BankAccountAdt>>());
  if (initial > 0) {
    auto t = rt.begin();
    obj->invoke(*t, account::deposit(initial));
    rt.commit(t);
  }
  return obj;
}

TEST(Escrow, BasicSemantics) {
  Runtime rt;
  auto acct = make_escrow(rt);
  auto t = rt.begin();
  EXPECT_EQ(acct->invoke(*t, account::deposit(10)), ok());
  EXPECT_EQ(acct->invoke(*t, account::balance()), Value{10});
  EXPECT_EQ(acct->invoke(*t, account::withdraw(4)), ok());
  EXPECT_EQ(acct->invoke(*t, account::balance()), Value{6});
  EXPECT_EQ(acct->invoke(*t, account::withdraw(7)),
            Value{kInsufficientFunds});
  rt.commit(t);
  EXPECT_EQ(acct->committed_balance(), 6);
}

TEST(Escrow, AbortDiscardsEffects) {
  Runtime rt;
  auto acct = make_escrow(rt, 100);
  auto t = rt.begin();
  acct->invoke(*t, account::withdraw(40));
  rt.abort(t);
  EXPECT_EQ(acct->committed_balance(), 100);
}

TEST(Escrow, ConcurrentCoveredWithdrawsProceed) {
  Runtime rt;
  auto acct = make_escrow(rt, 10);
  auto tb = rt.begin();
  auto tc = rt.begin();
  EXPECT_EQ(acct->invoke(*tb, account::withdraw(4)), ok());
  EXPECT_EQ(acct->invoke(*tc, account::withdraw(3)), ok());  // no blocking
  rt.commit(tc);
  rt.commit(tb);
  EXPECT_EQ(acct->committed_balance(), 3);

  const auto verdict = check_dynamic_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Escrow, ManyConcurrentWithdrawsBeyondGenericCap) {
  // The generic object's exact validation caps at kMaxExactValidation
  // concurrent conflicting transactions; escrow has no such limit.
  Runtime rt;
  auto acct = make_escrow(rt, 100);
  std::vector<std::shared_ptr<Transaction>> txns;
  for (int i = 0; i < 10; ++i) {
    auto t = rt.begin();
    EXPECT_EQ(acct->invoke(*t, account::withdraw(5)), ok());  // all admitted
    txns.push_back(std::move(t));
  }
  for (auto& t : txns) rt.commit(t);
  EXPECT_EQ(acct->committed_balance(), 50);
}

TEST(Escrow, UncoveredWithdrawBlocks) {
  Runtime rt;
  auto acct = make_escrow(rt, 5);
  auto tb = rt.begin();
  auto tc = rt.begin();
  EXPECT_EQ(acct->invoke(*tb, account::withdraw(4)), ok());
  auto blocked = testutil::expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*tc, account::withdraw(3)),
              Value{kInsufficientFunds});
    rt.commit(tc);
  });
  rt.commit(tb);  // low becomes 1: 3 > high(1) => insufficient
  testutil::join_within(blocked);
  EXPECT_EQ(acct->committed_balance(), 1);
}

TEST(Escrow, DefinitelyInsufficientAnswersImmediately) {
  // high = committed + others' pending deposits; nothing pending, so a
  // too-large withdraw resolves to insufficient without waiting.
  Runtime rt;
  auto acct = make_escrow(rt, 5);
  auto tb = rt.begin();  // keep another txn active with a covered withdraw
  acct->invoke(*tb, account::withdraw(1));
  auto tc = rt.begin();
  EXPECT_EQ(acct->invoke(*tc, account::withdraw(50)),
            Value{kInsufficientFunds});
  rt.commit(tc);
  rt.commit(tb);
}

TEST(Escrow, PendingDepositForcesWithdrawToWait) {
  // committed 2, pending deposit 5: withdraw(3) is neither covered
  // (low=2) nor definitely insufficient (high=7) — it must wait for the
  // deposit to resolve.
  Runtime rt;
  auto acct = make_escrow(rt, 2);
  auto tdep = rt.begin();
  auto twdr = rt.begin();
  acct->invoke(*tdep, account::deposit(5));
  auto blocked = testutil::expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*twdr, account::withdraw(3)), ok());
    rt.commit(twdr);
  });
  rt.commit(tdep);
  testutil::join_within(blocked);
  EXPECT_EQ(acct->committed_balance(), 4);
}

TEST(Escrow, DepositBlocksOnPendingBalanceObservation) {
  Runtime rt;
  auto acct = make_escrow(rt, 10);
  auto tr = rt.begin();
  EXPECT_EQ(acct->invoke(*tr, account::balance()), Value{10});
  auto tw = rt.begin();
  auto blocked = testutil::expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*tw, account::deposit(1)), ok());
    rt.commit(tw);
  });
  rt.commit(tr);
  testutil::join_within(blocked);
  EXPECT_EQ(acct->committed_balance(), 11);
}

TEST(Escrow, DepositBlocksOnPendingInsufficientObservation) {
  // tb recorded insufficient (50 > high=5); a deposit that could flip it
  // must wait for tb to resolve.
  Runtime rt;
  auto acct = make_escrow(rt, 5);
  auto tb = rt.begin();
  EXPECT_EQ(acct->invoke(*tb, account::withdraw(50)),
            Value{kInsufficientFunds});
  auto td = rt.begin();
  auto blocked = testutil::expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*td, account::deposit(100)), ok());
    rt.commit(td);
  });
  rt.commit(tb);
  testutil::join_within(blocked);
  EXPECT_EQ(acct->committed_balance(), 105);
}

TEST(Escrow, BalanceBlocksOnPendingStateChange) {
  Runtime rt;
  auto acct = make_escrow(rt, 10);
  auto tw = rt.begin();
  acct->invoke(*tw, account::withdraw(4));
  auto tr = rt.begin();
  auto blocked = testutil::expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*tr, account::balance()), Value{6});
    rt.commit(tr);
  });
  rt.commit(tw);
  testutil::join_within(blocked);
}

TEST(Escrow, FailedWithdrawDoesNotBlockBalance) {
  // A pending *failed* withdraw changes no state; balance proceeds.
  Runtime rt;
  auto acct = make_escrow(rt, 5);
  auto tb = rt.begin();
  EXPECT_EQ(acct->invoke(*tb, account::withdraw(50)),
            Value{kInsufficientFunds});
  auto tr = rt.begin();
  EXPECT_EQ(acct->invoke(*tr, account::balance()), Value{5});
  rt.commit(tr);
  rt.commit(tb);
}

TEST(Escrow, RecoveryReplaysNetEffects) {
  Runtime rt;
  auto acct = make_escrow(rt, 100);
  auto t = rt.begin();
  acct->invoke(*t, account::withdraw(30));
  acct->invoke(*t, account::withdraw(500));  // insufficient: no redo effect
  acct->invoke(*t, account::deposit(5));
  rt.commit(t);
  rt.crash();
  rt.recover();
  EXPECT_EQ(acct->committed_balance(), 75);
}

// Property: random concurrent escrow workloads produce dynamic atomic
// histories (checked against the formal definition).
class EscrowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EscrowProperty, HistoriesAreDynamicAtomic) {
  const std::uint64_t seed = GetParam();
  Runtime rt;
  auto acct = make_escrow(rt, 20);
  acct->set_wait_timeout(std::chrono::milliseconds(500));

  auto worker = [&](int index) {
    SplitMix64 rng(seed * 31337ULL + static_cast<std::uint64_t>(index));
    for (int k = 0; k < 2; ++k) {
      auto txn = rt.begin();
      try {
        const int ops = static_cast<int>(rng.range(1, 3));
        for (int i = 0; i < ops; ++i) {
          switch (rng.below(3)) {
            case 0:
              acct->invoke(*txn, account::deposit(rng.range(1, 5)));
              break;
            case 1:
              acct->invoke(*txn, account::withdraw(rng.range(1, 8)));
              break;
            default:
              acct->invoke(*txn, account::balance());
          }
          std::this_thread::sleep_for(
              std::chrono::microseconds(rng.range(0, 200)));
        }
        if (rng.chance(1, 5)) {
          rt.abort(txn);
        } else {
          rt.commit(txn);
        }
      } catch (const TransactionAborted&) {
        rt.abort(txn);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  const History h = rt.history();
  const auto wf = check_well_formed(h);
  ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
  const auto verdict = check_dynamic_atomic(rt.system(), h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscrowProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace argus
