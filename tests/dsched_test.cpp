// Deterministic scheduler tier (satellite of the interleaving explorer):
//
//   * the scheduler itself — same source, same schedule, byte-equal lane
//     orders; lane exceptions collected; all-blocked runs terminate;
//   * schedule strings — round-trip, error cases, replay semantics;
//   * the explorer — same (seed, schedule) replays to an identical
//     flight-recorder trace; exhaustive DFS on the 2-txn/1-object
//     dynamic-atomicity case visits every non-pruned interleaving and
//     certifies all of them; sleep sets prune commuting steps on
//     disjoint objects; the seeded chaos-admission regression is caught
//     and auto-minimized to a replayable schedule string;
//   * SchedMode::kOs stays the default and carries no policy.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/runtime.h"
#include "dsched/task_lane.h"
#include "sim/sched_explore.h"

namespace argus {
namespace {

// ---------------------------------------------------------------------------
// Schedule strings

TEST(ScheduleString, RoundTripsSmallLaneIds) {
  const std::vector<std::uint32_t> choices{0, 1, 2, 35, 7, 0};
  const std::string text = to_schedule_string(choices);
  EXPECT_EQ(text.substr(0, 3), "s1:");
  std::vector<std::uint32_t> back;
  std::string error;
  ASSERT_TRUE(parse_schedule_string(text, &back, &error)) << error;
  EXPECT_EQ(back, choices);
}

TEST(ScheduleString, RoundTripsLargeLaneIds) {
  const std::vector<std::uint32_t> choices{0, 36, 1, 999};
  const std::string text = to_schedule_string(choices);
  EXPECT_EQ(text.substr(0, 3), "s2:");
  std::vector<std::uint32_t> back;
  std::string error;
  ASSERT_TRUE(parse_schedule_string(text, &back, &error)) << error;
  EXPECT_EQ(back, choices);
}

TEST(ScheduleString, EmptyRoundTrips) {
  const std::string text = to_schedule_string({});
  std::vector<std::uint32_t> back{1, 2, 3};
  std::string error;
  ASSERT_TRUE(parse_schedule_string(text, &back, &error)) << error;
  EXPECT_TRUE(back.empty());
  // The empty string is also accepted (an absent schedule).
  ASSERT_TRUE(parse_schedule_string("", &back, &error)) << error;
  EXPECT_TRUE(back.empty());
}

TEST(ScheduleString, RejectsMalformedInput) {
  std::vector<std::uint32_t> out;
  std::string error;
  EXPECT_FALSE(parse_schedule_string("x9:012", &out, &error));
  EXPECT_FALSE(parse_schedule_string("s1:01!", &out, &error));
  EXPECT_FALSE(parse_schedule_string("s2:1,,2", &out, &error));
  EXPECT_FALSE(parse_schedule_string("s2:1,2,", &out, &error));
  EXPECT_FALSE(parse_schedule_string("s2:abc", &out, &error));
}

// ---------------------------------------------------------------------------
// The scheduler itself (no runtime)

std::pair<std::vector<int>, std::string> run_counter_lanes(
    std::uint64_t seed) {
  RandomScheduleSource source(seed);
  source.begin_run();
  DeterministicScheduler sched(source);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 3; ++i) {
    sched.spawn("w" + std::to_string(i), [&sched, &order, &mu, i] {
      for (int k = 0; k < 4; ++k) {
        {
          const std::scoped_lock lock(mu);
          order.push_back(i);
        }
        sched.yield(LaneHint{WaitPoint::kTxnBegin});
      }
    });
  }
  sched.run();
  return {order, sched.schedule_string()};
}

TEST(DeterministicScheduler, SameSeedSameOrder) {
  const auto a = run_counter_lanes(11);
  const auto b = run_counter_lanes(11);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.first.size(), 12u);  // 3 lanes x 4 increments, none lost
}

TEST(DeterministicScheduler, DifferentSeedsDiverge) {
  // Not guaranteed for any one pair, but across a few seeds at least one
  // must differ — otherwise the source is ignored.
  const auto base = run_counter_lanes(1);
  bool diverged = false;
  for (std::uint64_t seed = 2; seed <= 6 && !diverged; ++seed) {
    diverged = run_counter_lanes(seed).first != base.first;
  }
  EXPECT_TRUE(diverged);
}

TEST(DeterministicScheduler, ReplaySourcePinsTheOrder) {
  const auto recorded = run_counter_lanes(11);
  std::vector<std::uint32_t> choices;
  std::string error;
  ASSERT_TRUE(parse_schedule_string(recorded.second, &choices, &error));

  ReplayScheduleSource source(choices);
  source.begin_run();
  DeterministicScheduler sched(source);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 3; ++i) {
    sched.spawn("w" + std::to_string(i), [&sched, &order, &mu, i] {
      for (int k = 0; k < 4; ++k) {
        {
          const std::scoped_lock lock(mu);
          order.push_back(i);
        }
        sched.yield(LaneHint{WaitPoint::kTxnBegin});
      }
    });
  }
  sched.run();
  EXPECT_EQ(order, recorded.first);
  EXPECT_FALSE(source.diverged());
}

TEST(DeterministicScheduler, LaneExceptionsAreCollected) {
  RandomScheduleSource source(1);
  source.begin_run();
  DeterministicScheduler sched(source);
  sched.spawn("boom", [] { throw std::runtime_error("lane exploded"); });
  sched.run();
  ASSERT_EQ(sched.lane_errors().size(), 1u);
  EXPECT_NE(sched.lane_errors()[0].find("lane exploded"), std::string::npos);
}

TEST(DeterministicScheduler, AllLanesBlockedForeverStillTerminates) {
  RandomScheduleSource source(1);
  source.begin_run();
  DeterministicScheduler sched(source);
  std::mutex mu;
  std::condition_variable cv;
  sched.spawn("stuck", [&] {
    std::unique_lock lock(mu);
    // No deadline, nobody will notify: a deadlock from the scheduler's
    // point of view. run() must detect it and return (the lane is then
    // released into free-running mode and unwinds).
    sched.wait_round(LaneHint{WaitPoint::kObjectWait}, &cv, lock, cv,
                     std::chrono::microseconds(-1));
  });
  sched.run();  // must not hang
  SUCCEED();
}

TEST(DeterministicScheduler, VirtualTimeAdvancesTimeouts) {
  RandomScheduleSource source(1);
  source.begin_run();
  DeterministicScheduler sched(source);
  std::uint64_t woke_at = 0;
  sched.spawn("sleeper", [&] {
    sched.sleep_us(WaitPoint::kLogSleep, 500);
    woke_at = sched.now_us();
  });
  sched.run();
  // The sleeping lane can only resume after virtual time passed its
  // deadline — and virtual time only moves with schedule decisions.
  EXPECT_GE(woke_at, 500u);
  EXPECT_LT(woke_at, 10'000u);  // discrete-event jump, not busy stepping
}

// ---------------------------------------------------------------------------
// Runtime modes

TEST(SchedMode, OsIsTheDefaultAndCarriesNoPolicy) {
  Runtime rt(Runtime::RecorderMode::kFlight);
  EXPECT_EQ(rt.sched_mode(), SchedMode::kOs);
  EXPECT_EQ(rt.wait_policy(), nullptr);
}

TEST(SchedMode, DeterministicRequiresAPolicy) {
  EXPECT_THROW(Runtime(Runtime::RecorderMode::kFlight,
                       SchedMode::kDeterministic, nullptr),
               UsageError);
}

// ---------------------------------------------------------------------------
// Explorer cases: replay determinism

TEST(SchedCase, ConfigStringRoundTrips) {
  SchedCase c;
  c.kind = ScheduleKind::kPct;
  c.seed = 12345;
  c.pct_change_points = 5;
  c.protocol = Protocol::kHybrid;
  c.adt = "queue";
  c.objects = 3;
  c.lanes = 4;
  c.txns_per_lane = 1;
  c.initial_balance = 7;
  c.live_sentinel = false;
  c.weaken_admission = true;
  c.fault.force_fail_permille = 120;
  c.fault.crash_point = FaultSite::kMidApply;
  c.fault.crash_at_arrival = 3;
  c.schedule = "s1:0120";

  SchedCase back;
  std::string error;
  ASSERT_TRUE(parse_sched_case(to_config_string(c), &back, &error)) << error;
  EXPECT_EQ(back, c);
}

TEST(SchedCase, ParseRejectsGarbage) {
  SchedCase out;
  std::string error;
  EXPECT_FALSE(parse_sched_case("kind sideways\n", &out, &error));
  EXPECT_FALSE(parse_sched_case("adt heap\n", &out, &error));
  EXPECT_FALSE(parse_sched_case("lanes 0\n", &out, &error));
  EXPECT_FALSE(parse_sched_case("schedule s9:01\n", &out, &error));
  EXPECT_FALSE(parse_sched_case("seed 1 2\n", &out, &error));
  EXPECT_FALSE(parse_sched_case("no_such_key 1\n", &out, &error));
  // Comments and blank lines are fine.
  EXPECT_TRUE(parse_sched_case("# note\n\nseed 9\n", &out, &error)) << error;
  EXPECT_EQ(out.seed, 9u);
}

TEST(SchedExplore, SameSeedReplaysByteForByte) {
  SchedCase c;
  c.kind = ScheduleKind::kRandom;
  c.seed = 42;
  const SchedCaseResult first = run_sched_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  ASSERT_FALSE(first.trace.empty());
  ASSERT_FALSE(first.schedule.empty());

  const SchedCaseResult second = run_sched_case(c);
  EXPECT_EQ(first.trace, second.trace)
      << "same (seed, schedule source) must reproduce the flight-recorder "
         "trace byte for byte";
  EXPECT_EQ(first.schedule, second.schedule);
  EXPECT_EQ(first.steps, second.steps);
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
}

TEST(SchedExplore, RecordedScheduleReplaysByteForByte) {
  SchedCase c;
  c.kind = ScheduleKind::kRandom;
  c.seed = 43;
  const SchedCaseResult recorded = run_sched_case(c);
  ASSERT_TRUE(recorded.ok) << recorded.failure;

  SchedCase replay = c;
  replay.kind = ScheduleKind::kReplay;
  replay.schedule = recorded.schedule;
  const SchedCaseResult replayed = run_sched_case(replay);
  EXPECT_TRUE(replayed.ok) << replayed.failure;
  EXPECT_EQ(replayed.trace, recorded.trace)
      << "replaying the recorded schedule string must pin the interleaving";
  EXPECT_EQ(replayed.schedule, recorded.schedule);
}

TEST(SchedExplore, OccReplaysByteForByte) {
  // The optimistic path under the cooperative scheduler: serial
  // validation takes the commit turn before the log force, and the
  // executor-queue handoff routes through the WaitPolicy — the whole run
  // must still replay from its recorded schedule.
  SchedCase c;
  c.kind = ScheduleKind::kRandom;
  c.seed = 44;
  c.protocol = Protocol::kOcc;
  const SchedCaseResult recorded = run_sched_case(c);
  EXPECT_TRUE(recorded.ok) << recorded.failure;
  ASSERT_FALSE(recorded.schedule.empty());

  SchedCase replay = c;
  replay.kind = ScheduleKind::kReplay;
  replay.schedule = recorded.schedule;
  const SchedCaseResult replayed = run_sched_case(replay);
  EXPECT_TRUE(replayed.ok) << replayed.failure;
  EXPECT_EQ(replayed.trace, recorded.trace);
}

TEST(SchedExplore, MvccReplaysByteForByte) {
  SchedCase c;
  c.kind = ScheduleKind::kRandom;
  c.seed = 45;
  c.protocol = Protocol::kMvcc;
  const SchedCaseResult recorded = run_sched_case(c);
  EXPECT_TRUE(recorded.ok) << recorded.failure;

  SchedCase replay = c;
  replay.kind = ScheduleKind::kReplay;
  replay.schedule = recorded.schedule;
  const SchedCaseResult replayed = run_sched_case(replay);
  EXPECT_TRUE(replayed.ok) << replayed.failure;
  EXPECT_EQ(replayed.trace, recorded.trace);
}

TEST(DfsExplore, OccExhaustsTheTwoTxnOneObjectCase) {
  // Exhaustive DFS over the optimistic protocol: every non-pruned
  // interleaving of two transactions on one account — including every
  // placement of the validate-at-turn step — must certify hybrid atomic.
  SchedCase base;
  base.adt = "bank";
  base.protocol = Protocol::kOcc;
  base.objects = 1;
  base.lanes = 2;
  base.txns_per_lane = 1;
  base.seed = 3;
  const DfsExploreResult dfs = run_dfs_explore(base, /*max_runs=*/4096);
  EXPECT_TRUE(dfs.exhausted)
      << "the 2-txn/1-object tree must fit the run budget";
  EXPECT_EQ(dfs.certified, dfs.runs)
      << (dfs.failures.empty() ? "" : dfs.failures.front().failure);
  EXPECT_TRUE(dfs.failures.empty());
}

TEST(SchedExplore, PctIsDeterministicToo) {
  SchedCase c;
  c.kind = ScheduleKind::kPct;
  c.seed = 7;
  c.pct_change_points = 3;
  const SchedCaseResult first = run_sched_case(c);
  const SchedCaseResult second = run_sched_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.schedule, second.schedule);
}

TEST(SchedExplore, FaultsAndScheduleShareOneSeed) {
  // A case with faults enabled replays byte-for-byte from its seed too:
  // the injector's decisions are part of the same decision stream.
  SchedCase c;
  c.kind = ScheduleKind::kRandom;
  c.seed = 77;
  c.fault.force_fail_permille = 200;
  c.fault.force_max_retries = 2;
  c.fault.torn_batch_permille = 200;
  const SchedCaseResult first = run_sched_case(c);
  const SchedCaseResult second = run_sched_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
}

// ---------------------------------------------------------------------------
// Exhaustive DFS

TEST(DfsExplore, ExhaustsTheTwoTxnOneObjectDynamicCase) {
  SchedCase base;
  base.adt = "bank";
  base.protocol = Protocol::kDynamic;
  base.objects = 1;
  base.lanes = 2;
  base.txns_per_lane = 1;
  base.seed = 3;
  const DfsExploreResult dfs = run_dfs_explore(base, /*max_runs=*/4096);
  EXPECT_TRUE(dfs.exhausted)
      << "the 2-txn/1-object tree must fit the run budget";
  EXPECT_GT(dfs.runs, 50u) << "suspiciously few interleavings explored";
  EXPECT_EQ(dfs.certified, dfs.runs)
      << (dfs.failures.empty() ? "" : dfs.failures.front().failure);
  EXPECT_TRUE(dfs.failures.empty());
}

TEST(DfsExplore, SleepSetsPruneCommutingStepsOnDisjointObjects) {
  SchedCase base;
  base.adt = "bank";
  base.protocol = Protocol::kDynamic;
  base.objects = 2;
  base.lanes = 2;
  base.txns_per_lane = 1;
  base.seed = 5;
  const DfsExploreResult dfs = run_dfs_explore(base, /*max_runs=*/4096);
  EXPECT_TRUE(dfs.exhausted);
  EXPECT_EQ(dfs.certified, dfs.runs)
      << (dfs.failures.empty() ? "" : dfs.failures.front().failure);
  EXPECT_GT(dfs.pruned_branches, 0u)
      << "invocations on disjoint objects commute; sleep sets must prune "
         "at least one equivalent branch";
}

TEST(DfsExplore, QueueFamilyExhaustsToo) {
  SchedCase base;
  base.adt = "queue";
  base.protocol = Protocol::kDynamic;
  base.objects = 1;
  base.lanes = 2;
  base.txns_per_lane = 1;
  base.seed = 3;
  const DfsExploreResult dfs = run_dfs_explore(base, /*max_runs=*/4096);
  EXPECT_TRUE(dfs.exhausted);
  EXPECT_GT(dfs.runs, 10u);
  EXPECT_EQ(dfs.certified, dfs.runs)
      << (dfs.failures.empty() ? "" : dfs.failures.front().failure);
}

// ---------------------------------------------------------------------------
// The seeded regression: chaos admission must be caught and minimized

TEST(SchedExplore, WeakenedAdmissionIsCaughtAndMinimized) {
  SchedExploreOptions options;
  options.seeds_per_cell = 4;
  options.weaken_admission = true;
  const SchedExploreSummary summary = run_sched_explore(options);
  ASSERT_GT(summary.cases, 0u);
  ASSERT_FALSE(summary.failures.empty())
      << "admit-everything must produce atomicity violations somewhere in "
      << summary.cases << " cases";

  // Every failure was auto-minimized to a replayable schedule that still
  // reproduces it — the contract a corpus entry is promoted under.
  const SchedExploreFailure& f = summary.failures.front();
  EXPECT_EQ(f.minimized.kind, ScheduleKind::kReplay);
  const SchedCaseResult again = run_sched_case(f.minimized);
  EXPECT_FALSE(again.ok)
      << "minimized schedule no longer reproduces the violation";
  // Minimization never grows the schedule.
  EXPECT_LE(f.minimized.schedule.size(), f.schedule.size() + 3);
}

TEST(DfsExplore, WeakenedAdmissionFailsUnderExhaustiveSearch) {
  // DFS over the smallest broken configuration that can actually corrupt
  // state: admit-everything over TWO accounts with two transferring
  // lanes. Two objects matter — on a single account each transfer is
  // net-zero (the deposit refunds the withdraw), so every recorded
  // result replays in any commit order and chaos admission is
  // unobservable. With a cross-account transfer, two withdraws admitted
  // from stale views overdraw the source account and recovery replay
  // diverges. The tree contains that interleaving by construction, so
  // DFS must find it without any seed luck.
  SchedCase base;
  base.adt = "bank";
  base.protocol = Protocol::kDynamic;
  base.objects = 2;
  base.lanes = 2;
  base.txns_per_lane = 1;
  base.initial_balance = 3;
  base.weaken_admission = true;
  base.seed = 3;
  const DfsExploreResult dfs = run_dfs_explore(base, /*max_runs=*/4096);
  EXPECT_TRUE(dfs.exhausted) << "tree did not fit in the run budget";
  EXPECT_FALSE(dfs.failures.empty())
      << "exhaustive search over a broken protocol found no violation in "
      << dfs.runs << " runs";
  // Every failure DFS reports must carry a replayable schedule string.
  for (const auto& f : dfs.failures) {
    EXPECT_FALSE(f.schedule.empty());
  }
}

}  // namespace
}  // namespace argus
