// Reproduction of the paper's modularity thesis from the *negative* side.
//
// §5.2/§6: "programmers of objects can verify that atomicity is preserved
// without knowing what other objects are in the system; they need know
// only what local atomicity property is used throughout the system." The
// qualifier is load-bearing: dynamic and static atomicity are
// *incompatible* — each object can satisfy its own property while the
// computation as a whole is not atomic, because the two properties pin
// different serialization orders (dynamic: an order extending precedes;
// static: initiation-timestamp order). This test constructs exactly such
// a computation with our runtime objects, then shows the same schedule is
// atomic when the system is protocol-uniform.
#include <gtest/gtest.h>

#include "check/atomicity.h"
#include "core/runtime.h"
#include "spec/adts/int_set.h"
#include "test_util.h"

namespace argus {
namespace {

TEST(ProtocolMixing, DynamicPlusStaticViolatesGlobalAtomicity) {
  Runtime rt;
  auto x_static = rt.create_static<IntSetAdt>("x");
  auto y_dynamic = rt.create_dynamic<IntSetAdt>("y");

  // A begins first (smaller initiation timestamp), B second.
  auto ta = rt.begin();
  auto tb = rt.begin();
  ASSERT_LT(ta->start_ts(), tb->start_ts());

  // B inserts at both objects and commits.
  y_dynamic->invoke(*tb, intset::insert(5));
  x_static->invoke(*tb, intset::insert(1));
  rt.commit(tb);

  // A reads B's committed insert at the dynamic object: precedes <B,A>,
  // so the dynamic side serializes B before A...
  EXPECT_EQ(y_dynamic->invoke(*ta, intset::member(5)), Value{true});
  // ...but at the static object A's timestamp precedes B's, so A reads
  // the state *below* B's insert: the static side serializes A before B.
  EXPECT_EQ(x_static->invoke(*ta, intset::member(1)), Value{false});
  rt.commit(ta);

  const History h = rt.history();

  // Each object's projection satisfies its own property...
  SystemSpec sys_x;
  sys_x.add_object(x_static->id(), "int_set");
  EXPECT_TRUE(check_static_atomic(sys_x, h.project_object(x_static->id())).ok);
  SystemSpec sys_y;
  sys_y.add_object(y_dynamic->id(), "int_set");
  EXPECT_TRUE(
      check_dynamic_atomic(sys_y, h.project_object(y_dynamic->id())).ok);

  // ...but the computation as a whole is NOT atomic: A's views pin B<A at
  // y and A<B at x simultaneously.
  const auto verdict = check_atomic(rt.system(), h);
  EXPECT_FALSE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
}

TEST(ProtocolMixing, UniformDynamicSameScheduleIsAtomic) {
  Runtime rt;
  auto x = rt.create_dynamic<IntSetAdt>("x");
  auto y = rt.create_dynamic<IntSetAdt>("y");

  auto ta = rt.begin();
  auto tb = rt.begin();
  y->invoke(*tb, intset::insert(5));
  x->invoke(*tb, intset::insert(1));
  rt.commit(tb);

  EXPECT_EQ(y->invoke(*ta, intset::member(5)), Value{true});
  // Under a uniform dynamic system A sees B's insert at x too: both
  // objects serialize B before A.
  EXPECT_EQ(x->invoke(*ta, intset::member(1)), Value{true});
  rt.commit(ta);

  const auto verdict = check_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  const auto dyn = check_dynamic_atomic(rt.system(), rt.history());
  EXPECT_TRUE(dyn.ok) << dyn.explanation;
}

TEST(ProtocolMixing, UniformStaticSameScheduleIsAtomic) {
  Runtime rt;
  auto x = rt.create_static<IntSetAdt>("x");
  auto y = rt.create_static<IntSetAdt>("y");

  auto ta = rt.begin();
  auto tb = rt.begin();
  y->invoke(*tb, intset::insert(5));
  x->invoke(*tb, intset::insert(1));
  rt.commit(tb);

  // Under a uniform static system A (earlier timestamp) reads below B at
  // BOTH objects: a consistent serialization A before B.
  EXPECT_EQ(y->invoke(*ta, intset::member(5)), Value{false});
  EXPECT_EQ(x->invoke(*ta, intset::member(1)), Value{false});
  rt.commit(ta);

  const auto verdict = check_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  const auto st = check_static_atomic(rt.system(), rt.history());
  EXPECT_TRUE(st.ok) << st.explanation;
}

TEST(ProtocolMixing, HybridPlusDynamicUpdatesAreCompatibleHere) {
  // Hybrid processes updates with the dynamic protocol and stamps them at
  // commit; for update-only computations the two serialize identically,
  // so this particular mix stays atomic. (This is an observation about
  // our runtime pair, not a general compatibility theorem.)
  Runtime rt;
  auto x = rt.create_hybrid<IntSetAdt>("x");
  auto y = rt.create_dynamic<IntSetAdt>("y");

  auto ta = rt.begin();
  auto tb = rt.begin();
  y->invoke(*tb, intset::insert(5));
  x->invoke(*tb, intset::insert(1));
  rt.commit(tb);
  EXPECT_EQ(y->invoke(*ta, intset::member(5)), Value{true});
  EXPECT_EQ(x->invoke(*ta, intset::member(1)), Value{true});
  rt.commit(ta);

  const auto verdict = check_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

}  // namespace
}  // namespace argus
