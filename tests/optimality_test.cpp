// Executable reproduction of the §4.1 optimality construction.
//
// The proof that no local atomicity property beats dynamic atomicity goes
// through a gadget: for any history h_x at x that is atomic but not
// dynamic atomic — i.e. perm(h_x) fails to serialize in some
// precedes-consistent order T — build the counter object y whose serial
// sequences pin the serialization order exactly, give y the history h_y
// in which the committed activities run in order T, and interleave. Each
// object's history is fine by its own lights (h_y is even *serial*), but
// the combined computation serializes nowhere: at y only T works, at x
// anything but T works. We run that construction concretely.
#include <gtest/gtest.h>

#include "check/atomicity.h"
#include "hist/wellformed.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;
using intseq = std::vector<ActivityId>;

// The §4.1 history at x: atomic, but perm(h_x) is serializable ONLY in
// a-b-c while precedes(h_x) = {<b,c>} also demands b-a-c and b-c-a.
History h_x() {
  return hist({
      invoke(X, A, op("member", 3)),
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      respond(X, A, Value{false}),
      invoke(X, C, op("member", 3)),
      commit(X, B),
      respond(X, C, Value{true}),
      commit(X, A),
      commit(X, C),
  });
}

// The gadget h_y: the counter runs the committed activities serially in
// the order T = b-a-c (a precedes-consistent order in which x cannot
// serialize). Increment results pin exactly this order.
History h_y() {
  return hist({
      invoke(Y, B, op("increment")),
      respond(Y, B, Value{1}),
      commit(Y, B),
      invoke(Y, A, op("increment")),
      respond(Y, A, Value{2}),
      commit(Y, A),
      invoke(Y, C, op("increment")),
      respond(Y, C, Value{3}),
      commit(Y, C),
  });
}

SystemSpec gadget_system() {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  sys.add_object(Y, "counter");
  return sys;
}

TEST(Optimality, XHistoryIsAtomicButNotDynamicAtomic) {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  EXPECT_TRUE(check_atomic(sys, h_x()).ok);
  EXPECT_FALSE(check_dynamic_atomic(sys, h_x()).ok);
  // perm(h_x) serializes only in a-b-c.
  const auto orders = all_serialization_orders(sys, h_x().perm());
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders.front(), (intseq{A, B, C}));
}

TEST(Optimality, GadgetPinsExactlyTheBadOrder) {
  SystemSpec sys;
  sys.add_object(Y, "counter");
  const auto orders = all_serialization_orders(sys, h_y());
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders.front(), (intseq{B, A, C}));
  // h_y is itself dynamic atomic: it is serial, so precedes totally
  // orders the activities and only that order is demanded.
  const auto verdict = check_dynamic_atomic(sys, h_y());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Optimality, CombinedComputationIsNotAtomic) {
  // Interleave so that h|x carries h_x's operations and results while
  // h|y == h_y. Each activity stays sequential (its y-increment sits
  // after its x-response and before its commits; §2 forbids invocations
  // only after the activity has committed, so each activity's y-work
  // goes before its first commit event).
  History h;
  h.append(invoke(X, A, op("member", 3)));
  h.append(invoke(X, B, op("insert", 3)));
  h.append(respond(X, B, ok()));
  h.append(respond(X, A, Value{false}));
  // b's y-increment (first in T), then b commits everywhere.
  h.append(invoke(Y, B, op("increment")));
  h.append(respond(Y, B, Value{1}));
  h.append(invoke(X, C, op("member", 3)));
  h.append(commit(X, B));
  h.append(commit(Y, B));
  h.append(respond(X, C, Value{true}));
  // a's y-increment (second in T), then a commits everywhere.
  h.append(invoke(Y, A, op("increment")));
  h.append(respond(Y, A, Value{2}));
  h.append(commit(X, A));
  h.append(commit(Y, A));
  // c's y-increment (third in T), then c commits everywhere.
  h.append(invoke(Y, C, op("increment")));
  h.append(respond(Y, C, Value{3}));
  h.append(commit(X, C));
  h.append(commit(Y, C));

  const auto sys = gadget_system();
  ASSERT_TRUE(check_well_formed(h).ok()) << check_well_formed(h).summary();

  // Projections match the construction: x sees (a variant of) h_x with
  // the same operations/results, y sees the pinned serial counter run.
  const auto x_orders = all_serialization_orders(
      [] {
        SystemSpec s;
        s.add_object(X, "int_set");
        return s;
      }(),
      h.project_object(X).perm());
  ASSERT_FALSE(x_orders.empty());
  for (const auto& order : x_orders) {
    EXPECT_NE(order, (intseq{B, A, C}));  // x can never serialize in T
  }
  const auto y_orders = all_serialization_orders(
      [] {
        SystemSpec s;
        s.add_object(Y, "counter");
        return s;
      }(),
      h.project_object(Y).perm());
  ASSERT_EQ(y_orders.size(), 1u);
  EXPECT_EQ(y_orders.front(), (intseq{B, A, C}));  // y only serializes in T

  // The contradiction the proof needs: the whole computation is not
  // atomic.
  const auto verdict = check_atomic(sys, h);
  EXPECT_FALSE(verdict.ok) << verdict.explanation;
}

// ------------------------------------------------------------------------
// §4.2.2: "Static atomicity, like dynamic atomicity, is optimal. The
// proof of optimality is similar." We run that similar construction: take
// the §4.2.2 history at x that is atomic but NOT static atomic (its only
// serialization order contradicts the timestamp order), pair it with a
// counter y that runs the activities serially in timestamp order — a
// perfectly static-atomic history — and combine. Each object satisfies
// its own property's premises; the whole computation is not atomic.

TEST(StaticOptimality, XHistoryAtomicButNotStaticAtomic) {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  // a (ts 2) reads member(3)=false; b (ts 1) then inserts 3. Only a-b
  // serializes, but timestamp order is b-a.
  const History hx = hist({
      initiate(X, A, 2),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{false}),
      commit(X, A),
      initiate(X, B, 1),
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      commit(X, B),
  });
  EXPECT_TRUE(check_atomic(sys, hx).ok);
  EXPECT_FALSE(check_static_atomic(sys, hx).ok);
  const auto orders = all_serialization_orders(sys, hx.perm());
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders.front(), (intseq{A, B}));
}

TEST(StaticOptimality, CombinedComputationIsNotAtomic) {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  sys.add_object(Y, "counter");

  // Interleave hx with the counter gadget running in timestamp order
  // b-a: y's history is serial and consistent with the timestamps (the
  // static property's premise), pinning serialization b-a.
  History h;
  h.append(initiate(X, A, 2));
  h.append(initiate(Y, A, 2));
  h.append(initiate(Y, B, 1));
  h.append(initiate(X, B, 1));
  h.append(invoke(X, A, op("member", 3)));
  h.append(respond(X, A, Value{false}));
  // b's counter increment first (timestamp order), then b's insert at x.
  h.append(invoke(Y, B, op("increment")));
  h.append(respond(Y, B, Value{1}));
  h.append(invoke(X, B, op("insert", 3)));
  h.append(respond(X, B, ok()));
  h.append(commit(X, B));
  h.append(commit(Y, B));
  // a's counter increment second.
  h.append(invoke(Y, A, op("increment")));
  h.append(respond(Y, A, Value{2}));
  h.append(commit(X, A));
  h.append(commit(Y, A));

  ASSERT_TRUE(check_well_formed_static(h).ok())
      << check_well_formed_static(h).summary();

  // y's projection is static atomic (serializable in timestamp order
  // b-a); x's projection is not, and the combination serializes nowhere.
  SystemSpec sys_y;
  sys_y.add_object(Y, "counter");
  EXPECT_TRUE(check_static_atomic(sys_y, h.project_object(Y)).ok);

  const auto verdict = check_atomic(sys, h);
  EXPECT_FALSE(verdict.ok) << verdict.explanation;
}

}  // namespace
}  // namespace argus
