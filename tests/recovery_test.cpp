// Recovery tests: write-ahead intentions logging, crash simulation, and
// all-or-nothing replay across all protocols (recoverability is half of
// atomicity — §1, §3).
#include <gtest/gtest.h>

#include "core/runtime.h"
#include "sched/factory.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/fifo_queue.h"
#include "spec/adts/int_set.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

TEST(Recovery, CommittedEffectsSurviveCrash) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t1 = rt.begin();
  set->invoke(*t1, intset::insert(3));
  rt.commit(t1);
  auto t2 = rt.begin();
  set->invoke(*t2, intset::insert(4));  // active at crash time

  rt.crash();
  EXPECT_TRUE(t2->doomed());
  rt.recover();

  auto t3 = rt.begin();
  EXPECT_EQ(set->invoke(*t3, intset::member(3)), Value{true});
  EXPECT_EQ(set->invoke(*t3, intset::member(4)), Value{false});
  rt.commit(t3);
}

TEST(Recovery, AbortedEffectsNeverReplayed) {
  Runtime rt;
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  auto t1 = rt.begin();
  acct->invoke(*t1, account::deposit(100));
  rt.commit(t1);
  auto t2 = rt.begin();
  acct->invoke(*t2, account::withdraw(40));
  rt.abort(t2);

  rt.crash();
  rt.recover();
  EXPECT_EQ(acct->committed_state(), 100);
}

TEST(Recovery, MultiObjectAtomicity) {
  // A transfer across two accounts: after crash+recover, either both
  // effects exist or neither.
  Runtime rt;
  auto a1 = rt.create_dynamic<BankAccountAdt>("a1");
  auto a2 = rt.create_dynamic<BankAccountAdt>("a2");
  auto setup = rt.begin();
  a1->invoke(*setup, account::deposit(100));
  rt.commit(setup);

  auto transfer = rt.begin();
  a1->invoke(*transfer, account::withdraw(30));
  a2->invoke(*transfer, account::deposit(30));
  rt.commit(transfer);

  auto in_flight = rt.begin();
  a1->invoke(*in_flight, account::withdraw(50));  // never commits

  rt.crash();
  rt.recover();
  EXPECT_EQ(a1->committed_state(), 70);
  EXPECT_EQ(a2->committed_state(), 30);
}

TEST(Recovery, ReplayPreservesOrderWithinObject) {
  Runtime rt;
  auto q = rt.create_hybrid_queue("q");
  for (int i = 1; i <= 3; ++i) {
    auto t = rt.begin();
    q->invoke(*t, fifo::enqueue(i));
    rt.commit(t);
  }
  auto t = rt.begin();
  EXPECT_EQ(q->invoke(*t, fifo::dequeue()), Value{1});
  rt.commit(t);

  rt.crash();
  rt.recover();
  EXPECT_EQ(q->committed_items(), (std::vector<std::int64_t>{2, 3}));
}

TEST(Recovery, StaticObjectReplaysInTimestampOrder) {
  // Transactions committing out of timestamp order: recovery must
  // rebuild the *timestamp-ordered* log (start_ts in the commit record).
  Runtime rt;
  auto acct = rt.create_static<BankAccountAdt>("a");
  auto t1 = rt.begin();  // smaller ts
  auto t2 = rt.begin();  // larger ts
  acct->invoke(*t1, account::deposit(10));
  rt.commit(t1);
  acct->invoke(*t2, account::withdraw(4));
  rt.commit(t2);

  rt.crash();
  rt.recover();
  ASSERT_TRUE(acct->committed_state().has_value());
  EXPECT_EQ(*acct->committed_state(), 6);
}

TEST(Recovery, CrashDuringBlockedInvocationUnwinds) {
  Runtime rt;
  auto q = rt.create_dynamic<FifoQueueAdt>("q");
  auto consumer = rt.begin();
  auto blocked = std::async(std::launch::async, [&] {
    try {
      q->invoke(*consumer, fifo::dequeue());  // waits forever
      ADD_FAILURE() << "dequeue should have been aborted by crash";
    } catch (const TransactionAborted& e) {
      EXPECT_EQ(e.reason(), AbortReason::kCrash);
      rt.abort(consumer);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rt.crash();
  blocked.get();
  rt.recover();
}

TEST(Recovery, RepeatedCrashesIdempotent) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t = rt.begin();
  set->invoke(*t, intset::insert(1));
  rt.commit(t);
  for (int i = 0; i < 3; ++i) {
    rt.crash();
    rt.recover();
  }
  EXPECT_TRUE(set->committed_state().contains(1));
}

TEST(Recovery, LogRecordsCarryResults) {
  Runtime rt;
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  auto t = rt.begin();
  acct->invoke(*t, account::deposit(7));
  acct->invoke(*t, account::withdraw(99));  // insufficient: result logged
  rt.commit(t);
  const auto records = rt.tm().log().records();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].entries.size(), 1u);
  ASSERT_EQ(records[0].entries[0].ops.size(), 2u);
  EXPECT_EQ(records[0].entries[0].ops[1].result, Value{kInsufficientFunds});
}

class RecoveryAcrossProtocols : public ::testing::TestWithParam<Protocol> {};

TEST_P(RecoveryAcrossProtocols, CommittedBalancePreserved) {
  Runtime rt;
  auto acct = make_object<BankAccountAdt>(rt, GetParam(), "a");
  auto t1 = rt.begin();
  acct->invoke(*t1, account::deposit(50));
  rt.commit(t1);
  auto t2 = rt.begin();
  acct->invoke(*t2, account::withdraw(20));
  rt.commit(t2);
  auto t3 = rt.begin();
  acct->invoke(*t3, account::deposit(5));
  rt.abort(t3);

  rt.crash();
  rt.recover();

  auto check = rt.begin();
  EXPECT_EQ(acct->invoke(*check, account::balance()), Value{30});
  rt.commit(check);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RecoveryAcrossProtocols,
                         ::testing::Values(Protocol::kDynamic,
                                           Protocol::kStatic,
                                           Protocol::kHybrid,
                                           Protocol::kTwoPhase,
                                           Protocol::kCommutativity,
                                           Protocol::kTimestamp));

}  // namespace
}  // namespace argus
