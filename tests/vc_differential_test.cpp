// Differential certification of the vector-clock fast path (label
// vccheck): thousands of seeded random histories, swept across the five
// CC modes' timestamp disciplines (dynamic/2PL, static, hybrid, OCC,
// MVCC), are judged by check_vc_atomic and compared against the exact
// checkers:
//
//   * kEscalating must agree with check_canonical_atomic *exactly* —
//     PASS iff the committed projection is serializable in canonical
//     order, VIOLATION otherwise, never an unresolved SUSPICIOUS.
//   * kVectorClock is one-sided: it may stay SUSPICIOUS, but a PASS must
//     imply the exact checker passes and a VIOLATION claim must imply
//     the exact checker rejects (soundness — the fast path never PASSes
//     what exact replay refutes, and never invents a violation).
//   * where the discipline promises more (static/hybrid stamps, plain
//     atomicity), PASS verdicts are cross-checked against
//     check_static_atomic / check_hybrid_atomic / check_atomic.
//
// Violations are minted two ways: flipping a response value (the
// observed result no longer matches any serial execution) and swapping
// two commit stamps (the canonical order inverts under a real conflict).
//
// Any disagreement is minimized by greedy activity removal and written
// to $ARGUS_VC_ARTIFACT_DIR (when set) for offline replay, in the
// parse.h notation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/atomicity.h"
#include "check/random_history.h"
#include "check/vc_atomicity.h"
#include "common/rng.h"

namespace argus {
namespace {

struct Bank {
  const char* name;
  StampDiscipline stamps;
  std::uint64_t seed_base;
};

// One bank per CC mode of the pluggable executor; OCC and MVCC share the
// commit-stamp discipline but draw disjoint seed ranges and system mixes.
const Bank kBanks[] = {
    {"dynamic", StampDiscipline::kNone, 10'000},
    {"static", StampDiscipline::kInitiation, 20'000},
    {"hybrid", StampDiscipline::kHybrid, 30'000},
    {"occ", StampDiscipline::kCommit, 40'000},
    {"mvcc", StampDiscipline::kCommit, 50'000},
};

constexpr int kSeedsPerBank = 400;  // 5 banks x 400 = 2000 base histories

SystemSpec make_system(std::uint64_t seed) {
  SystemSpec sys;
  switch (seed % 3) {
    case 0:
      sys.add_object(ObjectId{0}, "int_set");
      sys.add_object(ObjectId{1}, "counter");
      break;
    case 1:
      sys.add_object(ObjectId{0}, "bank_account");
      sys.add_object(ObjectId{1}, "bag");
      break;
    default:
      sys.add_object(ObjectId{0}, "kv_store");
      sys.add_object(ObjectId{1}, "fifo_queue");
      break;
  }
  return sys;
}

RandomHistoryOptions make_options(const Bank& bank, int i) {
  RandomHistoryOptions o;
  o.seed = bank.seed_base + static_cast<std::uint64_t>(i);
  o.activities = 3 + i % 4;
  o.ops_per_activity = 2 + i % 3;
  o.abort_percent = (i % 4 == 1) ? 20 : 0;
  o.contiguity_percent = (i % 5) * 25;  // 0,25,50,75,100
  o.stamps = bank.stamps;
  return o;
}

/// Flips the first flippable response value at or after a seeded offset:
/// the response no longer matches any serial execution, so the committed
/// projection stops being serializable in *any* order.
bool flip_response(std::vector<Event>& events, std::uint64_t seed) {
  SplitMix64 rng(seed);
  if (events.empty()) return false;
  const std::size_t start = rng.below(events.size());
  for (std::size_t k = 0; k < events.size(); ++k) {
    Event& e = events[(start + k) % events.size()];
    if (e.kind != EventKind::kRespond) continue;
    if (e.result.is_int()) {
      e.result = Value{e.result.as_int() + 1};
      return true;
    }
    if (e.result.is_bool()) {
      e.result = Value{!e.result.as_bool()};
      return true;
    }
  }
  return false;
}

/// Swaps the serialization stamps of the first two differently-stamped
/// events (commit stamps or initiations): the canonical order inverts
/// while the observed results stay put.
bool swap_stamps(std::vector<Event>& events) {
  Event* first = nullptr;
  for (Event& e : events) {
    if (!e.has_timestamp()) continue;
    if (first == nullptr) {
      first = &e;
    } else if (e.timestamp != first->timestamp) {
      // Swap every stamp of the two activities, not just one event's, so
      // the history stays well-formed per activity.
      const Timestamp ta = first->timestamp;
      const Timestamp tb = e.timestamp;
      const ActivityId a = first->activity;
      const ActivityId b = e.activity;
      for (Event& ev : events) {
        if (!ev.has_timestamp()) continue;
        if (ev.activity == a) ev.timestamp = tb;
        if (ev.activity == b) ev.timestamp = ta;
      }
      return true;
    }
  }
  return false;
}

History drop_activity(const History& h, ActivityId a) {
  std::vector<Event> kept;
  kept.reserve(h.events().size());
  for (const Event& e : h.events()) {
    if (e.activity != a) kept.push_back(e);
  }
  return History(std::move(kept));
}

/// Greedy activity-removal minimization: shrink while the disagreement
/// predicate still holds.
History minimize_disagreement(
    const History& h, const std::function<bool(const History&)>& disagrees) {
  History current = h;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (ActivityId a : current.activities()) {
      History candidate = drop_activity(current, a);
      if (disagrees(candidate)) {
        current = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return current;
}

std::string describe_system(const SystemSpec& sys) {
  std::ostringstream out;
  for (ObjectId x : sys.objects()) {
    out << "# object " << to_string(x) << " " << sys.spec_of(x).type_name()
        << "\n";
  }
  return out.str();
}

/// Writes a minimized disagreement to $ARGUS_VC_ARTIFACT_DIR (if set) and
/// returns a failure message either way.
std::string report_disagreement(
    const std::string& label, const SystemSpec& sys, const History& h,
    const std::function<bool(const History&)>& disagrees) {
  const History minimized = minimize_disagreement(h, disagrees);
  std::ostringstream msg;
  msg << label << "\nminimized history:\n"
      << describe_system(sys) << minimized.to_string();
  static int artifact_count = 0;
  if (const char* dir = std::getenv("ARGUS_VC_ARTIFACT_DIR")) {
    std::filesystem::create_directories(dir);
    const auto path = std::filesystem::path(dir) /
                      ("vc_disagreement_" + std::to_string(artifact_count++) +
                       ".txt");
    std::ofstream out(path);
    out << "# " << label << "\n" << describe_system(sys)
        << minimized.to_string();
    msg << "\nartifact: " << path;
  }
  return msg.str();
}

struct SweepTotals {
  std::uint64_t histories{0};
  std::uint64_t windows{0};
  std::uint64_t escalations{0};
  std::uint64_t fastpath_windows{0};
  std::uint64_t minted_violations{0};
  std::uint64_t exact_failures{0};
};

/// The per-history differential: escalating equivalence, vector-clock
/// soundness, and exact-checker cross-checks.
void check_one(const Bank& bank, const SystemSpec& sys, const History& h,
               std::uint64_t seed, bool sampled_check_atomic,
               SweepTotals& totals) {
  const CheckResult exact = check_canonical_atomic(sys, h);
  ++totals.histories;
  if (!exact.ok) ++totals.exact_failures;

  for (const std::size_t window : {std::size_t{0}, std::size_t{7}}) {
    VcCheckerOptions esc_options;  // escalate = true
    const VcReport esc = check_vc_atomic(sys, h, esc_options, window);
    totals.windows += esc.stats.windows;
    totals.escalations += esc.stats.escalations;
    totals.fastpath_windows += esc.stats.fastpath_windows;

    EXPECT_NE(esc.verdict, VcVerdict::kSuspicious)
        << bank.name << " seed " << seed << " window " << window
        << ": escalation must always resolve";
    if ((esc.verdict == VcVerdict::kPass) != exact.ok) {
      auto disagrees = [&](const History& probe) {
        const VcReport r = check_vc_atomic(sys, probe, esc_options, window);
        return (r.verdict == VcVerdict::kPass) !=
               check_canonical_atomic(sys, probe).ok;
      };
      std::ostringstream label;
      label << bank.name << " seed " << seed << " window " << window
            << ": kEscalating says " << to_string(esc.verdict)
            << " but exact says " << (exact.ok ? "PASS" : "FAIL") << " ("
            << exact.explanation << ")";
      ADD_FAILURE() << report_disagreement(label.str(), sys, h, disagrees);
      return;  // one artifact per history is enough
    }

    VcCheckerOptions vc_options;
    vc_options.escalate = false;
    const VcReport vc = check_vc_atomic(sys, h, vc_options, window);
    const bool vc_unsound =
        (vc.verdict == VcVerdict::kPass && !exact.ok) ||
        (vc.verdict == VcVerdict::kViolation && exact.ok);
    if (vc_unsound) {
      auto disagrees = [&](const History& probe) {
        const VcReport r = check_vc_atomic(sys, probe, vc_options, window);
        const bool ok = check_canonical_atomic(sys, probe).ok;
        return (r.verdict == VcVerdict::kPass && !ok) ||
               (r.verdict == VcVerdict::kViolation && ok);
      };
      std::ostringstream label;
      label << bank.name << " seed " << seed << " window " << window
            << ": kVectorClock says " << to_string(vc.verdict)
            << " but exact says " << (exact.ok ? "PASS" : "FAIL");
      ADD_FAILURE() << report_disagreement(label.str(), sys, h, disagrees);
      return;
    }

    // The linear-time claim for the dynamic/2PL discipline: unstamped
    // keys are first-commit positions, which arrive in fold order, so a
    // passing history never even goes suspicious.
    if (bank.stamps == StampDiscipline::kNone && exact.ok) {
      EXPECT_EQ(esc.stats.escalations, 0u)
          << bank.name << " seed " << seed << " window " << window;
    }
  }

  // Where the discipline promises more, a canonical PASS must agree with
  // the named judgement of check/atomicity.h.
  if (exact.ok) {
    if (bank.stamps == StampDiscipline::kInitiation) {
      EXPECT_TRUE(check_static_atomic(sys, h).ok)
          << bank.name << " seed " << seed;
    } else if (bank.stamps == StampDiscipline::kHybrid) {
      EXPECT_TRUE(check_hybrid_atomic(sys, h).ok)
          << bank.name << " seed " << seed;
    }
    if (sampled_check_atomic) {
      EXPECT_TRUE(check_atomic(sys, h).ok) << bank.name << " seed " << seed;
    }
  }
}

TEST(VcDifferential, FastPathAgreesWithExactCheckersAcrossCcModes) {
  SweepTotals totals;
  for (const Bank& bank : kBanks) {
    for (int i = 0; i < kSeedsPerBank; ++i) {
      const RandomHistoryOptions options = make_options(bank, i);
      const SystemSpec sys = make_system(options.seed);
      const History h = random_atomic_history(sys, options);
      const bool sample_atomic = i % 5 == 0 && options.activities <= 5;
      check_one(bank, sys, h, options.seed, sample_atomic, totals);

      // Minted violations: flip a response value on every third seed,
      // invert two stamps on every third+1 seed (stamped banks).
      if (i % 3 == 0) {
        std::vector<Event> mutated = h.events();
        if (flip_response(mutated, options.seed * 31 + 7)) {
          const History bad = History(std::move(mutated));
          if (!check_canonical_atomic(sys, bad).ok) {
            ++totals.minted_violations;
          }
          check_one(bank, sys, bad, options.seed ^ 0xf11f, false, totals);
        }
      } else if (i % 3 == 1 && bank.stamps != StampDiscipline::kNone) {
        std::vector<Event> mutated = h.events();
        if (swap_stamps(mutated)) {
          const History bad = History(std::move(mutated));
          if (!check_canonical_atomic(sys, bad).ok) {
            ++totals.minted_violations;
          }
          check_one(bank, sys, bad, options.seed ^ 0xabba, false, totals);
        }
      }
    }
  }

  // The sweep must actually exercise both sides of the judgement.
  EXPECT_GE(totals.histories, 2000u);
  EXPECT_GE(totals.minted_violations, 100u)
      << "mutations stopped minting violations; the adversarial side of "
         "the differential is dead";
  EXPECT_GT(totals.exact_failures, 0u);

  // Escalation-rate bound. This population is adversarial by design —
  // uniformly random interleavings of stamped disciplines invert
  // conflicting folds in most windows, and a third of the histories are
  // mutated to violate — so escalation legitimately carries much of it;
  // the bound is a regression canary against escalating *every* window
  // (measured ~0.72 at introduction). The zero-escalation claims for
  // realistic traffic are pinned separately: per-history above for clean
  // dynamic histories, and by the serial/commuting sweeps below.
  ASSERT_GT(totals.windows, 0u);
  const double escalation_rate = static_cast<double>(totals.escalations) /
                                 static_cast<double>(totals.windows);
  EXPECT_LT(escalation_rate, 0.85)
      << totals.escalations << " escalations over " << totals.windows
      << " windows";
  ::testing::Test::RecordProperty("vc_histories",
                                  static_cast<int>(totals.histories));
  ::testing::Test::RecordProperty("vc_escalation_rate_pct",
                                  static_cast<int>(escalation_rate * 100));
}

/// A genuinely serial history: activities execute and commit one after
/// another against real oracle states, in emission order — so for
/// unstamped activities the canonical (first-commit) order is exactly
/// the execution order. (random_atomic_history with contiguity 100
/// emits serial *blocks* but in an order unrelated to the ground-truth
/// serial order, which is a different — hostile — shape.)
History serial_history(const SystemSpec& sys, std::uint64_t seed,
                       int activities, int ops_per_activity) {
  SplitMix64 rng(seed);
  const std::vector<ObjectId> objects = sys.objects();
  std::map<ObjectId, std::unique_ptr<SpecState>> states;
  for (ObjectId x : objects) states[x] = sys.spec_of(x).initial_state();
  std::vector<Event> events;
  for (int a = 0; a < activities; ++a) {
    const ActivityId id{static_cast<std::uint64_t>(a)};
    std::vector<ObjectId> touched;
    for (int k = 0; k < ops_per_activity; ++k) {
      const ObjectId x = objects[rng.below(objects.size())];
      for (int attempt = 0; attempt < 8; ++attempt) {
        const Operation o = random_operation(sys.spec_of(x).type_name(), rng);
        auto outcomes = states[x]->step(o);
        if (outcomes.empty()) continue;
        auto& pick = outcomes[rng.below(outcomes.size())];
        events.push_back(invoke(x, id, o));
        events.push_back(respond(x, id, pick.result));
        states[x] = std::move(pick.state);
        if (std::find(touched.begin(), touched.end(), x) == touched.end()) {
          touched.push_back(x);
        }
        break;
      }
    }
    if (touched.empty()) touched.push_back(objects[0]);
    for (ObjectId x : touched) events.push_back(commit(x, id));
  }
  return History(std::move(events));
}

TEST(VcDifferential, SerialDynamicTrafficNeverEscalates) {
  // Unstamped (dynamic/2PL) keys are first-commit positions, so a serial
  // execution folds in canonical order by construction: every window
  // closes on the fast path.
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t seed = 10'900 + static_cast<std::uint64_t>(i);
    const SystemSpec sys = make_system(seed);
    const History h = serial_history(sys, seed, 3 + i % 4, 2 + i % 3);
    const VcReport report = check_vc_atomic(sys, h, {}, 5);
    EXPECT_EQ(report.verdict, VcVerdict::kPass) << "seed " << seed;
    EXPECT_EQ(report.stats.escalations, 0u) << "seed " << seed;
    EXPECT_EQ(report.stats.fastpath_windows, report.stats.windows);
  }
}

TEST(VcDifferential, CommutingTrafficNeverEscalatesUnderAnyDiscipline) {
  // The E17 deposit-mix claim: when every operation pair always
  // commutes, fold order is irrelevant — even commit stamps that invert
  // the canonical order keep the checker on the fast path, across all
  // five disciplines.
  SystemSpec sys;
  sys.add_object(ObjectId{0}, "bank_account");
  sys.add_object(ObjectId{1}, "bank_account");
  for (const Bank& bank : kBanks) {
    for (int i = 0; i < 40; ++i) {
      SplitMix64 rng(bank.seed_base + 900 + static_cast<std::uint64_t>(i));
      const int n = 4 + static_cast<int>(rng.below(4));
      // Stamp ranks drawn as a random permutation: the canonical order
      // has nothing to do with the emission order.
      std::vector<Timestamp> rank;
      for (int a = 0; a < n; ++a) {
        rank.push_back(static_cast<Timestamp>(a + 1));
      }
      for (std::size_t k = rank.size(); k > 1; --k) {
        std::swap(rank[k - 1], rank[rng.below(k)]);
      }
      std::vector<Event> events;
      for (int a = 0; a < n; ++a) {
        const ActivityId id{static_cast<std::uint64_t>(a)};
        const ObjectId x{rng.below(2)};
        if (bank.stamps == StampDiscipline::kInitiation) {
          events.push_back(initiate(x, id, rank[static_cast<std::size_t>(a)]));
        }
        events.push_back(
            invoke(x, id, op("deposit", static_cast<std::int64_t>(
                                            1 + rng.below(5)))));
        events.push_back(respond(x, id, ok()));
        if (bank.stamps == StampDiscipline::kCommit ||
            bank.stamps == StampDiscipline::kHybrid) {
          events.push_back(
              commit_at(x, id, rank[static_cast<std::size_t>(a)]));
        } else {
          events.push_back(commit(x, id));
        }
      }
      const History h(std::move(events));
      ASSERT_TRUE(check_canonical_atomic(sys, h).ok) << bank.name;
      const VcReport report = check_vc_atomic(sys, h, {}, 3);
      EXPECT_EQ(report.verdict, VcVerdict::kPass) << bank.name << " i " << i;
      EXPECT_EQ(report.stats.escalations, 0u) << bank.name << " i " << i;
      EXPECT_EQ(report.stats.certified, static_cast<std::uint64_t>(n));
    }
  }
}

TEST(VcDifferential, BoundedMemorySealingPreservesVerdicts) {
  // Aggressive checkpointing (seal every ~8 buffered events) must not
  // change any verdict: the sealed summary clocks carry the conflicts
  // forward.
  for (const Bank& bank : kBanks) {
    for (int i = 0; i < 60; ++i) {
      const RandomHistoryOptions options = make_options(bank, i);
      const SystemSpec sys = make_system(options.seed);
      const History h = random_atomic_history(sys, options);
      const CheckResult exact = check_canonical_atomic(sys, h);
      VcCheckerOptions tight;
      tight.checkpoint_threshold = 8;
      const VcReport report = check_vc_atomic(sys, h, tight, 5);
      EXPECT_NE(report.verdict, VcVerdict::kSuspicious)
          << bank.name << " seed " << options.seed;
      EXPECT_EQ(report.verdict == VcVerdict::kPass, exact.ok)
          << bank.name << " seed " << options.seed << ": "
          << exact.explanation;
      if (h.events().size() > 24) {
        EXPECT_GE(report.stats.checkpoints, 1u)
            << bank.name << " seed " << options.seed;
      }
    }
  }
}

}  // namespace
}  // namespace argus
