// Scheduler-model baseline tests: strict 2PL, static-commutativity
// locking, strict timestamp ordering — including the behaviours that
// separate them from the data-dependent protocols (§5.1).
#include <gtest/gtest.h>

#include "check/atomicity.h"
#include "core/runtime.h"
#include "sched/factory.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/fifo_queue.h"
#include "spec/adts/int_set.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

TEST(TwoPhaseLocking, SerialUseWorks) {
  Runtime rt;
  auto set = make_object<IntSetAdt>(rt, Protocol::kTwoPhase, "s");
  auto t1 = rt.begin();
  EXPECT_EQ(set->invoke(*t1, intset::insert(3)), ok());
  rt.commit(t1);
  auto t2 = rt.begin();
  EXPECT_EQ(set->invoke(*t2, intset::member(3)), Value{true});
  rt.commit(t2);
}

TEST(TwoPhaseLocking, SharedReadLocks) {
  Runtime rt;
  auto set = make_object<IntSetAdt>(rt, Protocol::kTwoPhase, "s");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  EXPECT_EQ(set->invoke(*t1, intset::member(1)), Value{false});
  EXPECT_EQ(set->invoke(*t2, intset::member(2)), Value{false});  // no block
  rt.commit(t1);
  rt.commit(t2);
}

TEST(TwoPhaseLocking, WriteLocksExclusiveEvenWhenCommuting) {
  // 2PL cannot see that insert(1) and insert(2) commute.
  Runtime rt;
  auto set = make_object<IntSetAdt>(rt, Protocol::kTwoPhase, "s");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  set->invoke(*t1, intset::insert(1));
  auto blocked = expect_blocks([&] {
    set->invoke(*t2, intset::insert(2));
    rt.commit(t2);
  });
  rt.commit(t1);
  join_within(blocked);
}

TEST(TwoPhaseLocking, AbortRollsBackStorage) {
  Runtime rt;
  auto acct = make_object<BankAccountAdt>(rt, Protocol::kTwoPhase, "a");
  auto t1 = rt.begin();
  acct->invoke(*t1, account::deposit(10));
  rt.abort(t1);
  auto t2 = rt.begin();
  EXPECT_EQ(acct->invoke(*t2, account::balance()), Value{0});
  rt.commit(t2);
}

TEST(CommutativityLocking, CommutingWritesOverlap) {
  Runtime rt;
  auto set = make_object<IntSetAdt>(rt, Protocol::kCommutativity, "s");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  set->invoke(*t1, intset::insert(1));
  set->invoke(*t2, intset::insert(2));  // commutes: no block
  rt.commit(t1);
  rt.commit(t2);
  auto t3 = rt.begin();
  EXPECT_EQ(set->invoke(*t3, intset::member(1)), Value{true});
  EXPECT_EQ(set->invoke(*t3, intset::member(2)), Value{true});
  rt.commit(t3);
}

TEST(CommutativityLocking, WithdrawsAlwaysConflict) {
  // §5.1: the conflict table cannot see the balance; two withdraws
  // serialize even when covered.
  Runtime rt;
  auto acct = make_object<BankAccountAdt>(rt, Protocol::kCommutativity, "a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(10));
  rt.commit(setup);

  auto t1 = rt.begin();
  auto t2 = rt.begin();
  EXPECT_EQ(acct->invoke(*t1, account::withdraw(4)), ok());
  auto blocked = expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*t2, account::withdraw(3)), ok());
    rt.commit(t2);
  });
  rt.commit(t1);
  join_within(blocked);
}

TEST(CommutativityLocking, DistinctEnqueuesConflict) {
  Runtime rt;
  auto q = make_object<FifoQueueAdt>(rt, Protocol::kCommutativity, "q");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  q->invoke(*t1, fifo::enqueue(1));
  auto blocked = expect_blocks([&] {
    q->invoke(*t2, fifo::enqueue(2));
    rt.commit(t2);
  });
  rt.commit(t1);
  join_within(blocked);
}

TEST(CommutativityLocking, EqualEnqueuesOverlap) {
  Runtime rt;
  auto q = make_object<FifoQueueAdt>(rt, Protocol::kCommutativity, "q");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  q->invoke(*t1, fifo::enqueue(1));
  q->invoke(*t2, fifo::enqueue(1));  // equal values commute in the table
  rt.commit(t1);
  rt.commit(t2);
}

TEST(CommutativityLocking, HistoryDynamicAtomic) {
  // Locking is a (suboptimal) implementation of dynamic atomicity: its
  // histories must pass the dynamic checker.
  Runtime rt;
  auto set = make_object<IntSetAdt>(rt, Protocol::kCommutativity, "s");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  set->invoke(*t1, intset::insert(1));
  set->invoke(*t2, intset::insert(2));
  rt.commit(t2);
  rt.commit(t1);
  auto t3 = rt.begin();
  set->invoke(*t3, intset::member(1));
  rt.commit(t3);

  const auto verdict = check_dynamic_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(TimestampOrdering, SerialUseWorks) {
  Runtime rt;
  auto acct = make_object<BankAccountAdt>(rt, Protocol::kTimestamp, "a");
  auto t1 = rt.begin();
  acct->invoke(*t1, account::deposit(10));
  rt.commit(t1);
  auto t2 = rt.begin();
  EXPECT_EQ(acct->invoke(*t2, account::balance()), Value{10});
  rt.commit(t2);
}

TEST(TimestampOrdering, LateWriteAborts) {
  // t_old (smaller ts) writes after t_new read: classic wts/rts abort.
  Runtime rt;
  auto acct = make_object<BankAccountAdt>(rt, Protocol::kTimestamp, "a");
  auto t_old = rt.begin();
  auto t_new = rt.begin();
  EXPECT_EQ(acct->invoke(*t_new, account::balance()), Value{0});
  rt.commit(t_new);
  try {
    acct->invoke(*t_old, account::deposit(5));
    FAIL() << "expected timestamp-order abort";
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kTimestampOrder);
    rt.abort(t_old);
  }
}

TEST(TimestampOrdering, LateReadAbortsWithoutVersions) {
  // Unlike the multi-version StaticAtomicObject, single-version TO must
  // abort a reader below a committed writer.
  Runtime rt;
  auto acct = make_object<BankAccountAdt>(rt, Protocol::kTimestamp, "a");
  auto t_old = rt.begin();
  auto t_new = rt.begin();
  acct->invoke(*t_new, account::deposit(5));
  rt.commit(t_new);
  try {
    acct->invoke(*t_old, account::balance());
    FAIL() << "expected timestamp-order abort";
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kTimestampOrder);
    rt.abort(t_old);
  }
}

TEST(TimestampOrdering, InOrderProceeds) {
  Runtime rt;
  auto acct = make_object<BankAccountAdt>(rt, Protocol::kTimestamp, "a");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  acct->invoke(*t1, account::deposit(5));
  rt.commit(t1);
  EXPECT_EQ(acct->invoke(*t2, account::balance()), Value{5});
  rt.commit(t2);
}

TEST(TimestampOrdering, StrictnessBlocksOnUncommitted) {
  Runtime rt;
  auto acct = make_object<BankAccountAdt>(rt, Protocol::kTimestamp, "a");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  acct->invoke(*t1, account::deposit(5));  // uncommitted
  auto blocked = expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*t2, account::balance()), Value{5});
    rt.commit(t2);
  });
  rt.commit(t1);
  join_within(blocked);
}

TEST(Factory, ProtocolNames) {
  EXPECT_EQ(to_string(Protocol::kDynamic), "dynamic");
  EXPECT_EQ(to_string(Protocol::kStatic), "static");
  EXPECT_EQ(to_string(Protocol::kHybrid), "hybrid");
  EXPECT_EQ(to_string(Protocol::kTwoPhase), "2pl");
  EXPECT_EQ(to_string(Protocol::kCommutativity), "comm-lock");
  EXPECT_EQ(to_string(Protocol::kTimestamp), "timestamp");
}

TEST(Factory, AllProtocolsConstructible) {
  Runtime rt;
  int i = 0;
  for (Protocol p :
       {Protocol::kDynamic, Protocol::kStatic, Protocol::kHybrid,
        Protocol::kTwoPhase, Protocol::kCommutativity, Protocol::kTimestamp}) {
    auto obj = make_object<IntSetAdt>(rt, p, "s" + std::to_string(i++));
    ASSERT_NE(obj, nullptr);
    auto t = rt.begin();
    EXPECT_EQ(obj->invoke(*t, intset::insert(1)), ok());
    rt.commit(t);
  }
}

TEST(Factory, SnapshotReadSupport) {
  EXPECT_TRUE(supports_snapshot_reads(Protocol::kHybrid));
  EXPECT_TRUE(supports_snapshot_reads(Protocol::kStatic));
  EXPECT_FALSE(supports_snapshot_reads(Protocol::kDynamic));
  EXPECT_FALSE(supports_snapshot_reads(Protocol::kTwoPhase));
}

}  // namespace
}  // namespace argus
