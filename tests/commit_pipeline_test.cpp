// Staged commit pipeline: the read-only watermark invariant under
// concurrency, group-commit crash semantics, and mode parity.
//
// The load-bearing invariant (§4.3.3, preserved by the watermark): a
// read-only activity with start timestamp t observes exactly the
// committed updates with commit timestamps below t. The stress test
// checks it exactly — the stable log is forced before anything applies,
// so "the committed updates below t" can be recomputed after the run
// from the log alone and compared against what each scanner saw live.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "check/atomicity.h"
#include "common/rng.h"
#include "core/runtime.h"
#include "hist/wellformed.h"
#include "spec/adts/bank_account.h"
#include "test_util.h"

namespace argus {
namespace {

/// Sum of deposit amounts at `object` across records with commit_ts < t.
std::int64_t committed_below(const std::vector<CommitLogRecord>& records,
                             ObjectId object, Timestamp t) {
  std::int64_t total = 0;
  for (const CommitLogRecord& record : records) {
    if (record.commit_ts >= t) continue;
    for (const CommitLogRecord::Entry& entry : record.entries) {
      if (entry.object != object) continue;
      for (const LoggedOp& logged : entry.ops) {
        if (logged.op.name == "deposit") total += logged.op.args[0].as_int();
      }
    }
  }
  return total;
}

TEST(CommitPipeline, ReadOnlyScannersSeeExactlyTheCommittedPrefix) {
  Runtime rt(/*record_history=*/false);
  auto account = rt.create_hybrid<BankAccountAdt>("a");
  rt.set_wait_timeout_all(std::chrono::milliseconds(500));

  constexpr int kUpdaters = 4;
  constexpr int kTxnsPerUpdater = 150;
  constexpr int kScanners = 3;

  std::atomic<bool> stop{false};
  auto updater = [&](int index) {
    SplitMix64 rng(31 * static_cast<std::uint64_t>(index) + 7);
    for (int i = 0; i < kTxnsPerUpdater; ++i) {
      auto t = rt.begin();
      try {
        account->invoke(*t, account::deposit(rng.range(1, 5)));
        rt.commit(t);
      } catch (const TransactionAborted&) {
        rt.abort(t);
      }
    }
  };

  struct Observation {
    Timestamp start_ts;
    std::int64_t balance;
  };
  std::mutex observations_mu;
  std::vector<Observation> observations;
  auto scanner = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto t = rt.begin_read_only();
      const Value v = account->invoke(*t, account::balance());
      rt.commit(t);
      const std::scoped_lock lock(observations_mu);
      observations.push_back({t->start_ts(), v.as_int()});
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kUpdaters; ++i) threads.emplace_back(updater, i);
  for (int i = 0; i < kScanners; ++i) threads.emplace_back(scanner);
  for (int i = 0; i < kUpdaters; ++i) threads[static_cast<std::size_t>(i)].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t i = kUpdaters; i < threads.size(); ++i) threads[i].join();

  // Every scanner's view must equal the committed prefix below its start
  // timestamp, recomputed from the write-ahead log.
  const auto records = rt.tm().log().records();
  ASSERT_FALSE(observations.empty());
  for (const Observation& obs : observations) {
    EXPECT_EQ(obs.balance,
              committed_below(records, account->id(), obs.start_ts))
        << "scanner at t=" << obs.start_ts
        << " saw a view that is not the committed prefix below t";
  }
}

TEST(CommitPipeline, ConcurrentHistoryIsHybridAtomic) {
  Runtime rt;  // record history
  auto account = rt.create_hybrid<BankAccountAdt>("a");
  rt.set_wait_timeout_all(std::chrono::milliseconds(500));

  auto updater = [&](int index) {
    for (int i = 0; i < 5; ++i) {
      auto t = rt.begin();
      try {
        account->invoke(*t, account::deposit(index + 1));
        rt.commit(t);
      } catch (const TransactionAborted&) {
        rt.abort(t);
      }
    }
  };
  auto scanner = [&] {
    for (int i = 0; i < 5; ++i) {
      auto t = rt.begin_read_only();
      account->invoke(*t, account::balance());
      rt.commit(t);
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(updater, i);
  threads.emplace_back(scanner);
  for (auto& t : threads) t.join();

  const History h = rt.history();
  const auto wf = check_well_formed_hybrid(h, h.initiated());
  EXPECT_TRUE(wf.ok()) << wf.summary();
  const auto verdict = check_hybrid_atomic(rt.system(), h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(CommitPipeline, CrashDuringGroupCommitBatchLosesOnlyUnforcedRecords) {
  Runtime rt(/*record_history=*/false);
  auto account = rt.create_hybrid<BankAccountAdt>("a");

  // Two transactions force normally and must survive.
  for (int i = 0; i < 2; ++i) {
    auto t = rt.begin();
    account->invoke(*t, account::deposit(100));
    rt.commit(t);
  }
  const std::size_t forced_before = rt.tm().log().size();
  ASSERT_EQ(forced_before, 2u);

  // Three committers pile into a held flush: their records are queued or
  // claimed but never stable.
  rt.tm().log().hold_flushes();
  std::atomic<int> crash_aborts{0};
  auto committer = [&] {
    auto t = rt.begin();
    try {
      account->invoke(*t, account::deposit(7));
      rt.commit(t);
    } catch (const TransactionAborted& e) {
      rt.abort(t);
      if (e.reason() == AbortReason::kCrash) ++crash_aborts;
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(committer);
  // Wait until all three are blocked inside the commit pipeline.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  rt.crash();
  rt.tm().log().release_flushes();
  for (auto& t : threads) t.join();
  rt.recover();

  // Recovery replayed exactly the forced prefix: the held batch is gone,
  // its committers unwound with crash aborts, and no partial effects
  // survive.
  EXPECT_EQ(rt.tm().log().size(), forced_before);
  EXPECT_EQ(crash_aborts.load(), 3);
  EXPECT_EQ(account->committed_state(), 200);

  // The pipeline is drained, not wedged: normal commits work again.
  auto t = rt.begin();
  account->invoke(*t, account::deposit(1));
  rt.commit(t);
  EXPECT_EQ(account->committed_state(), 201);
  EXPECT_EQ(rt.tm().log().size(), forced_before + 1);
}

TEST(CommitPipeline, CommitTimestampsStayMonotoneAndLogStaysSorted) {
  Runtime rt(/*record_history=*/false);
  auto account = rt.create_hybrid<BankAccountAdt>("a");
  auto worker = [&] {
    for (int i = 0; i < 200; ++i) {
      auto t = rt.begin();
      try {
        account->invoke(*t, account::deposit(1));
        rt.commit(t);
      } catch (const TransactionAborted&) {
        rt.abort(t);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  const auto records = rt.tm().log().records();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].commit_ts, records[i].commit_ts);
  }
  // The watermark caught up: every commit has published.
  EXPECT_GE(rt.tm().clock().watermark(), records.back().commit_ts);
  EXPECT_EQ(rt.tm().clock().inflight(), 0u);
}

TEST(CommitPipeline, PipelineStatsAreObservable) {
  Runtime rt(/*record_history=*/false);
  auto account = rt.create_hybrid<BankAccountAdt>("a");
  auto worker = [&] {
    for (int i = 0; i < 50; ++i) {
      auto t = rt.begin();
      account->invoke(*t, account::deposit(1));
      rt.commit(t);
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  const CommitPipelineStats stats = rt.tm().pipeline_stats();
  EXPECT_EQ(stats.commits, 200u);
  EXPECT_GT(stats.log_forces, 0u);
  EXPECT_EQ(stats.log_records, 200u);
  EXPECT_GE(stats.max_batch, 1u);
  EXPECT_GE(stats.avg_batch(), 1.0);
  EXPECT_GE(stats.clock_now, stats.watermark);
}

TEST(CommitPipeline, SingleMutexModeMatchesPipelinedSemantics) {
  for (const CommitMode mode :
       {CommitMode::kSingleMutex, CommitMode::kPipelined}) {
    Runtime rt(/*record_history=*/false);
    rt.tm().set_commit_mode(mode);
    auto account = rt.create_hybrid<BankAccountAdt>("a");
    auto worker = [&] {
      for (int i = 0; i < 50; ++i) {
        auto t = rt.begin();
        try {
          account->invoke(*t, account::deposit(2));
          rt.commit(t);
        } catch (const TransactionAborted&) {
          rt.abort(t);
        }
      }
    };
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) threads.emplace_back(worker);
    for (auto& t : threads) t.join();

    const std::uint64_t committed = rt.tm().stats().committed;
    EXPECT_EQ(account->committed_state(),
              static_cast<std::int64_t>(2 * committed));
    rt.crash();
    rt.recover();
    EXPECT_EQ(account->committed_state(),
              static_cast<std::int64_t>(2 * committed));
  }
}

}  // namespace
}  // namespace argus
