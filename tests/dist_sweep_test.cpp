// The cross-site sweep: every {site count x fault mix x seed}
// configuration must come through site churn, mid-2PC failures and
// recovery with the atomicity checkers and every distributed invariant
// probe green — and any single configuration must replay from its seed
// to a byte-equal merged trace. Labeled `dist` (its own CI job).
//
//   * ARGUS_DIST_ARTIFACT_DIR=<dir>: on failure, every failing
//     configuration is budget-minimized and written there as a
//     replayable config file (uploaded by CI as the dist-corpus
//     artifact; replay with examples/dist_replay).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "sim/dist_sweep.h"

namespace argus {
namespace {

void write_failure_artifacts(const DistSweepSummary& summary) {
  const char* dir = std::getenv("ARGUS_DIST_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0' || summary.failures.empty()) return;
  std::filesystem::create_directories(dir);
  int index = 0;
  for (const DistSweepFailure& f : summary.failures) {
    const DistSweepCase minimized = minimize_dist_budget(
        f.config,
        [](const DistSweepCase& probe) { return !run_dist_case(probe).ok; });
    const auto path = std::filesystem::path(dir) /
                      ("minimized_" + std::to_string(index++) + ".txt");
    std::ofstream out(path);
    out << "# auto-minimized failing dist config (replay: dist_replay)\n"
        << "# failure:\n";
    std::istringstream why(f.failure);
    std::string line;
    while (std::getline(why, line)) out << "#   " << line << "\n";
    out << to_dist_config_string(minimized);
  }
}

TEST(DistSweepConfig, RoundTripsThroughConfigString) {
  DistSweepCase c;
  c.protocol = Protocol::kDynamic;
  c.sites = 3;
  c.sharded = 5;
  c.replicated = 2;
  c.transactions = 17;
  c.initial_balance = 250;
  c.plan.seed = 987654321;
  c.plan.site_fail_permille = 90;
  c.plan.site_recover_permille = 400;
  c.plan.force_fail_permille = 120;
  c.plan.force_max_retries = 5;
  c.plan.force_retry_backoff_us = 7;
  c.plan.torn_batch_permille = 333;
  c.plan.leader_latency_permille = 44;
  c.plan.leader_latency_us = 55;
  c.plan.crash_point = FaultSite::kMidApply;
  c.plan.crash_at_arrival = 2;
  c.plan.spurious_timeout_permille = 66;
  c.plan.delayed_wakeup_permille = 77;
  c.plan.delayed_wakeup_us = 88;
  c.plan.coord_crash_point = FaultSite::kCoordMidDelivery;
  c.plan.coord_crash_at_arrival = 3;
  c.plan.coord_recover_permille = 450;
  c.plan.decision_force_fail_permille = 110;
  c.plan.msg_loss_permille = 130;
  c.plan.msg_latency_permille = 140;
  c.plan.msg_latency_us = 150;
  c.plan.msg_retries = 4;
  c.plan.max_faults = 9;

  DistSweepCase back;
  std::string error;
  ASSERT_TRUE(parse_dist_case(to_dist_config_string(c), &back, &error))
      << error;
  EXPECT_EQ(back, c);
}

TEST(DistSweepConfig, RejectsMalformedInput) {
  DistSweepCase c;
  std::string error;
  EXPECT_FALSE(parse_dist_case("no_such_key 1\n", &c, &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(parse_dist_case("sites banana\n", &c, &error));
  EXPECT_NE(error.find("not a number"), std::string::npos);
  EXPECT_FALSE(parse_dist_case("sites 0\n", &c, &error));
  EXPECT_FALSE(parse_dist_case("protocol occ\n", &c, &error))
      << "2PC needs a protocol that can hold a decision open";
  EXPECT_FALSE(parse_dist_case("sharded 0\nreplicated 0\n", &c, &error));
  // Comments and blank lines are fine.
  EXPECT_TRUE(parse_dist_case("# comment\n\n  seed 5\n", &c, &error)) << error;
  EXPECT_EQ(c.plan.seed, 5u);
}

TEST(DistSweep, EnumeratesTheFullGrid) {
  const auto cases = enumerate_dist_cases();
  // 4 site counts x 5 mixes x 2 protocols x 5 seeds, plus the
  // coordinator-fault axis: 4 pinned crash steps x 3 message mixes x
  // 2 protocols x 5 seeds at 3 sites.
  EXPECT_EQ(cases.size(), 320u);
  // No two cells share a decision stream.
  std::set<std::uint64_t> seeds;
  for (const auto& c : cases) seeds.insert(c.plan.seed);
  EXPECT_EQ(seeds.size(), cases.size());
  // The grid includes single-site deployments (degenerate but legal) and
  // the full four-site spread.
  std::set<int> sites;
  for (const auto& c : cases) sites.insert(c.sites);
  EXPECT_EQ(sites, (std::set<int>{1, 2, 3, 4}));
  // The coordinator axis pins a crash at every 2PC protocol step.
  std::set<FaultSite> steps;
  for (const auto& c : cases) {
    if (c.plan.coord_crash_at_arrival > 0) steps.insert(c.plan.coord_crash_point);
  }
  EXPECT_EQ(steps,
            (std::set<FaultSite>{
                FaultSite::kCoordPrePrepare, FaultSite::kCoordPostPrepare,
                FaultSite::kCoordPostDecision, FaultSite::kCoordMidDelivery}));
}

TEST(DistSweep, EveryConfigurationCertifiesClean) {
  const DistSweepSummary summary = run_dist_sweep();
  write_failure_artifacts(summary);
  EXPECT_EQ(summary.cases, 320u);
  std::string report;
  for (const auto& f : summary.failures) {
    report += "---- failing config ----\n" + to_dist_config_string(f.config) +
              f.failure + "\n";
  }
  EXPECT_TRUE(summary.all_ok()) << report;
  // The sweep genuinely exercised the distributed machinery: sites
  // failed (including mid-2PC), transactions committed through both the
  // one-phase and the two-phase paths, faults were injected, and at
  // least one in-doubt prepared record was resolved to a commit at
  // recovery.
  EXPECT_GT(summary.site_fails, 0u);
  EXPECT_GT(summary.faults_injected, 0u);
  EXPECT_GT(summary.committed, 0u);
  EXPECT_GT(summary.two_pc_commits, 0u);
  EXPECT_GT(summary.promoted_commits, 0u);
  // The coordinator axis genuinely fired: coordinators crashed at 2PC
  // protocol steps, and the termination protocol resolved stranded
  // prepared participants back to commit.
  EXPECT_GT(summary.coord_crashes, 0u);
  EXPECT_GT(summary.termination_promotions, 0u);
}

TEST(DistSweep, CoordinatorCrashCaseReplaysByteForByte) {
  // A pinned mid-delivery coordinator crash with lossy messaging: the
  // 2PC decision lands at some participants, the rest fence and resolve
  // through the termination protocol once the coordinator returns.
  DistSweepCase c;
  c.protocol = Protocol::kHybrid;
  c.sites = 3;
  c.plan.seed = 777001;
  c.plan.coord_crash_point = FaultSite::kCoordMidDelivery;
  c.plan.coord_crash_at_arrival = 1;
  c.plan.coord_recover_permille = 400;
  c.plan.msg_loss_permille = 150;
  c.plan.msg_retries = 2;
  c.plan.spurious_timeout_permille = 120;

  const DistCaseResult first = run_dist_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  ASSERT_FALSE(first.trace.empty());
  EXPECT_GT(first.coord_crashes, 0u);

  const DistCaseResult second = run_dist_case(c);
  EXPECT_EQ(first.trace, second.trace)
      << "same seed must reproduce the merged cross-site trace byte for byte";
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.coord_crashes, second.coord_crashes);
  EXPECT_EQ(first.msgs_lost, second.msgs_lost);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
}

TEST(DistSweep, ReplayingASeedReproducesTheMergedTraceByteForByte) {
  // The chaos mix on a three-site deployment — churn, log faults and a
  // pinned mid-apply crash all at once.
  DistSweepCase c;
  c.protocol = Protocol::kHybrid;
  c.sites = 3;
  c.plan.seed = 20260808;
  c.plan.site_fail_permille = 60;
  c.plan.site_recover_permille = 300;
  c.plan.force_fail_permille = 100;
  c.plan.force_max_retries = 2;
  c.plan.force_retry_backoff_us = 10;
  c.plan.torn_batch_permille = 120;
  c.plan.crash_point = FaultSite::kMidApply;
  c.plan.crash_at_arrival = 2;

  const DistCaseResult first = run_dist_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  ASSERT_FALSE(first.trace.empty());

  const DistCaseResult second = run_dist_case(c);
  EXPECT_EQ(first.trace, second.trace)
      << "same seed must reproduce the merged cross-site trace byte for byte";
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.site_fails, second.site_fails);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
}

TEST(DistSweep, MinimizeShrinksTheFaultBudget) {
  // Minimization contract on a *passing* case flipped by a synthetic
  // predicate: "fails whenever at least 3 faults fire". The bisection
  // must find exactly budget 3.
  DistSweepCase c;
  c.protocol = Protocol::kDynamic;
  c.sites = 2;
  c.plan.seed = 424242;
  c.plan.site_fail_permille = 200;
  c.plan.site_recover_permille = 500;
  c.plan.force_fail_permille = 150;
  c.plan.force_max_retries = 1;
  c.plan.force_retry_backoff_us = 1;
  const DistCaseResult full = run_dist_case(c);
  ASSERT_GE(full.faults_injected, 3u)
      << "seed must inject enough faults for the predicate to bite";

  const DistSweepCase minimized = minimize_dist_budget(
      c, [](const DistSweepCase& probe) {
        return run_dist_case(probe).faults_injected >= 3;
      });
  EXPECT_EQ(minimized.plan.max_faults, 3u);
}

}  // namespace
}  // namespace argus
