// Transaction substrate tests: Lamport clock, transaction lifecycle,
// deadlock detector, stable log, transaction manager.
#include <gtest/gtest.h>

#include <thread>

#include "txn/clock.h"
#include "txn/deadlock.h"
#include "txn/manager.h"
#include "txn/stable_log.h"

namespace argus {
namespace {

TEST(LamportClock, StrictlyIncreasing) {
  LamportClock clock;
  Timestamp prev = 0;
  for (int i = 0; i < 100; ++i) {
    const Timestamp t = clock.next();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(LamportClock, ObserveAdvances) {
  LamportClock clock;
  clock.observe(100);
  EXPECT_GT(clock.next(), 100u);
}

TEST(LamportClock, ObserveNeverRetreats) {
  LamportClock clock;
  const Timestamp t = clock.next();
  clock.observe(0);
  EXPECT_GT(clock.next(), t);
}

TEST(LamportClock, ConcurrentDrawsUnique) {
  LamportClock clock;
  std::vector<std::vector<Timestamp>> drawn(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      for (int k = 0; k < 1000; ++k) drawn[i].push_back(clock.next());
    });
  }
  for (auto& t : threads) t.join();
  std::set<Timestamp> all;
  for (const auto& v : drawn) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 4000u);
}

TEST(Transaction, LifecycleAndDoom) {
  Transaction t(ActivityId{1}, TxnKind::kUpdate, 5);
  EXPECT_TRUE(t.active());
  EXPECT_EQ(t.start_ts(), 5u);
  EXPECT_FALSE(t.read_only());
  EXPECT_NO_THROW(t.ensure_active());
  t.doom(AbortReason::kDeadlock);
  EXPECT_TRUE(t.doomed());
  EXPECT_EQ(t.doom_reason(), AbortReason::kDeadlock);
  EXPECT_THROW(t.ensure_active(), TransactionAborted);
}

TEST(Transaction, FirstDoomReasonWins) {
  Transaction t(ActivityId{1}, TxnKind::kUpdate, 1);
  t.doom(AbortReason::kWaitTimeout);
  t.doom(AbortReason::kDeadlock);
  EXPECT_EQ(t.doom_reason(), AbortReason::kWaitTimeout);
}

TEST(Transaction, EnsureActiveOnFinishedThrowsUsage) {
  Transaction t(ActivityId{1}, TxnKind::kUpdate, 1);
  t.set_state(TxnState::kCommitted);
  EXPECT_THROW(t.ensure_active(), UsageError);
}

TEST(DeadlockDetector, NoCycleNoVictim) {
  DeadlockDetector d;
  auto t1 = std::make_shared<Transaction>(ActivityId{1}, TxnKind::kUpdate, 1);
  auto t2 = std::make_shared<Transaction>(ActivityId{2}, TxnKind::kUpdate, 2);
  EXPECT_EQ(d.add_wait(t1, {t2}), nullptr);
  EXPECT_EQ(d.deadlocks_resolved(), 0u);
}

TEST(DeadlockDetector, TwoCycleYoungestDoomed) {
  DeadlockDetector d;
  auto t1 = std::make_shared<Transaction>(ActivityId{1}, TxnKind::kUpdate, 1);
  auto t2 = std::make_shared<Transaction>(ActivityId{2}, TxnKind::kUpdate, 2);
  EXPECT_EQ(d.add_wait(t1, {t2}), nullptr);
  auto victim = d.add_wait(t2, {t1});
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id(), ActivityId{2});  // youngest
  EXPECT_TRUE(victim->doomed());
  EXPECT_EQ(victim->doom_reason(), AbortReason::kDeadlock);
  EXPECT_EQ(d.deadlocks_resolved(), 1u);
}

TEST(DeadlockDetector, ThreeCycleDetected) {
  DeadlockDetector d;
  auto t1 = std::make_shared<Transaction>(ActivityId{1}, TxnKind::kUpdate, 1);
  auto t2 = std::make_shared<Transaction>(ActivityId{2}, TxnKind::kUpdate, 2);
  auto t3 = std::make_shared<Transaction>(ActivityId{3}, TxnKind::kUpdate, 3);
  EXPECT_EQ(d.add_wait(t1, {t2}), nullptr);
  EXPECT_EQ(d.add_wait(t2, {t3}), nullptr);
  auto victim = d.add_wait(t3, {t1});
  ASSERT_NE(victim, nullptr);
  EXPECT_TRUE(victim->doomed());
}

TEST(DeadlockDetector, ClearWaitBreaksEdges) {
  DeadlockDetector d;
  auto t1 = std::make_shared<Transaction>(ActivityId{1}, TxnKind::kUpdate, 1);
  auto t2 = std::make_shared<Transaction>(ActivityId{2}, TxnKind::kUpdate, 2);
  EXPECT_EQ(d.add_wait(t1, {t2}), nullptr);
  d.clear_wait(t1->id());
  EXPECT_EQ(d.add_wait(t2, {t1}), nullptr);  // no cycle anymore
}

TEST(DeadlockDetector, SelfWaitIgnored) {
  DeadlockDetector d;
  auto t1 = std::make_shared<Transaction>(ActivityId{1}, TxnKind::kUpdate, 1);
  EXPECT_EQ(d.add_wait(t1, {t1}), nullptr);
}

TEST(StableLog, AppendAndSnapshot) {
  StableLog log;
  CommitLogRecord r1;
  r1.txn = ActivityId{1};
  r1.commit_ts = 10;
  r1.entries.push_back({ObjectId{0}, {{op("deposit", 5), ok()}}});
  log.append(r1);
  EXPECT_EQ(log.size(), 1u);
  const auto records = log.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, ActivityId{1});
  EXPECT_EQ(records[0].entries[0].ops[0].op, op("deposit", 5));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(Manager, BeginAssignsUniqueIdsAndTimestamps) {
  TransactionManager tm;
  auto t1 = tm.begin();
  auto t2 = tm.begin();
  EXPECT_NE(t1->id(), t2->id());
  EXPECT_LT(t1->start_ts(), t2->start_ts());
  EXPECT_EQ(tm.stats().begun, 2u);
}

TEST(Manager, BeginWithTimestampAdvancesClock) {
  TransactionManager tm;
  auto t1 = tm.begin_with_timestamp(TxnKind::kUpdate, 500);
  EXPECT_EQ(t1->start_ts(), 500u);
  auto t2 = tm.begin();
  EXPECT_GT(t2->start_ts(), 500u);
}

TEST(Manager, CommitWithoutObjectsSucceeds) {
  TransactionManager tm;
  auto t = tm.begin();
  tm.commit(t);
  EXPECT_EQ(t->state(), TxnState::kCommitted);
  EXPECT_GT(t->commit_ts(), 0u);
  EXPECT_EQ(tm.stats().committed, 1u);
}

TEST(Manager, CommitTimestampsMonotoneInCommitOrder) {
  TransactionManager tm;
  auto t1 = tm.begin();
  auto t2 = tm.begin();
  tm.commit(t2);
  tm.commit(t1);
  EXPECT_GT(t1->commit_ts(), t2->commit_ts());
}

TEST(Manager, CommitDoomedTransactionAbortsAndThrows) {
  TransactionManager tm;
  auto t = tm.begin();
  t->doom(AbortReason::kDeadlock);
  EXPECT_THROW(tm.commit(t), TransactionAborted);
  EXPECT_EQ(t->state(), TxnState::kAborted);
  EXPECT_EQ(tm.stats().aborted, 1u);
  EXPECT_EQ(tm.stats().aborted_by_reason.at(AbortReason::kDeadlock), 1u);
}

TEST(Manager, CommitTwiceIsUsageError) {
  TransactionManager tm;
  auto t = tm.begin();
  tm.commit(t);
  EXPECT_THROW(tm.commit(t), UsageError);
}

TEST(Manager, AbortIdempotent) {
  TransactionManager tm;
  auto t = tm.begin();
  tm.abort(t);
  EXPECT_EQ(t->state(), TxnState::kAborted);
  tm.abort(t);  // no-op
  EXPECT_EQ(tm.stats().aborted, 1u);
}

TEST(Manager, DoomAllActive) {
  TransactionManager tm;
  auto t1 = tm.begin();
  auto t2 = tm.begin();
  auto t3 = tm.begin();
  tm.commit(t3);
  tm.doom_all_active(AbortReason::kCrash);
  EXPECT_TRUE(t1->doomed());
  EXPECT_TRUE(t2->doomed());
  EXPECT_EQ(t3->state(), TxnState::kCommitted);
}

TEST(Manager, ActiveTransactionsTracksLifecycle) {
  TransactionManager tm;
  auto t1 = tm.begin();
  EXPECT_EQ(tm.active_transactions().size(), 1u);
  tm.commit(t1);
  EXPECT_TRUE(tm.active_transactions().empty());
}

TEST(Manager, CommitWritesLogRecord) {
  TransactionManager tm;
  auto t = tm.begin();
  tm.commit(t);
  const auto records = tm.log().records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, t->id());
  EXPECT_EQ(records[0].commit_ts, t->commit_ts());
  EXPECT_EQ(records[0].start_ts, t->start_ts());
}

TEST(Manager, ReadOnlyKindPropagates) {
  TransactionManager tm;
  auto t = tm.begin(TxnKind::kReadOnly);
  EXPECT_TRUE(t->read_only());
}

}  // namespace
}  // namespace argus
