// Crash-under-load stress: the all-or-nothing property when the node
// fails while worker threads are mid-transaction. After crash + join +
// recover, the recovered state must equal a replay of exactly the
// transactions the stable log recorded as committed — and application
// invariants (money conservation) must hold for every crash point.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "core/runtime.h"
#include "sched/factory.h"
#include "spec/adts/bank_account.h"
#include "test_util.h"

namespace argus {
namespace {

class CrashStress
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {};

TEST_P(CrashStress, MoneyConservedAcrossMidFlightCrash) {
  const auto& [protocol, seed] = GetParam();
  constexpr int kAccounts = 4;
  constexpr std::int64_t kInitial = 100;

  Runtime rt;  // flight recording on: the sentinel audits the whole run
  std::vector<std::shared_ptr<ManagedObject>> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(make_object<BankAccountAdt>(
        rt, protocol, "a" + std::to_string(i)));
  }
  rt.set_wait_timeout_all(std::chrono::milliseconds(100));
  SentinelOptions sentinel_options;
  sentinel_options.window = std::chrono::milliseconds(2);
  auto& sentinel = rt.start_sentinel(sentinel_options);
  {
    auto setup = rt.begin();
    for (auto& a : accounts) a->invoke(*setup, account::deposit(kInitial));
    rt.commit(setup);
  }

  // A mild seeded fault mix rides along under the whole sweep: transient
  // force failures, torn batch tails, leader latency and wait-path chaos
  // shrink and reshape the committed set, but conservation and the
  // sentinel verdict below must be untouched by any of it.
  FaultPlan fault_plan;
  fault_plan.seed = seed * 1315423911ULL + 7;
  fault_plan.force_fail_permille = 60 + 20 * (seed % 3);
  fault_plan.force_max_retries = 2;
  fault_plan.force_retry_backoff_us = 5;
  fault_plan.torn_batch_permille = 80 + 30 * (seed % 2);
  fault_plan.leader_latency_permille = 50;
  fault_plan.leader_latency_us = 30;
  fault_plan.spurious_timeout_permille = 20;
  fault_plan.delayed_wakeup_permille = 30;
  fault_plan.delayed_wakeup_us = 50;
  rt.set_fault_injector(std::make_shared<FaultInjector>(fault_plan));

  // Workers transfer money until crashed.
  std::atomic<bool> stop{false};
  auto worker = [&](int index) {
    SplitMix64 rng(seed * 97ULL + static_cast<std::uint64_t>(index));
    while (!stop.load(std::memory_order_relaxed)) {
      auto t = rt.begin();
      try {
        const std::size_t from = rng.below(accounts.size());
        const std::size_t to = (from + 1) % accounts.size();
        const Value got = accounts[from]->invoke(*t, account::withdraw(3));
        if (got.is_unit()) {
          accounts[to]->invoke(*t, account::deposit(3));
        }
        rt.commit(t);
      } catch (const TransactionAborted& e) {
        rt.abort(t);
        if (e.reason() == AbortReason::kCrash) return;
      }
    }
  };
  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) workers.emplace_back(worker, i);

  // Crash at a pseudo-random moment mid-load.
  std::this_thread::sleep_for(
      std::chrono::microseconds(500 + 137 * (seed % 23)));
  rt.crash();
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  rt.set_fault_injector(nullptr);  // recovery itself is fault-free
  rt.recover();

  // Conservation: transfers move money or do nothing; every committed
  // transaction is fully replayed, every uncommitted one fully absent.
  auto check = rt.begin();
  std::int64_t total = 0;
  for (auto& a : accounts) {
    total += a->invoke(*check, account::balance()).as_int();
  }
  rt.commit(check);
  EXPECT_EQ(total, kAccounts * kInitial);
  EXPECT_GT(rt.tm().log().size(), 0u);  // something committed before the crash

  // Atomicity held continuously, through the crash and after recovery:
  // the online sentinel found no unserializable committed projection.
  sentinel.stop();
  EXPECT_EQ(sentinel.violations(), 0u) << sentinel.last_violation();
  EXPECT_GT(sentinel.activities_checked(), 0u);
  rt.stop_sentinel();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashStress,
    ::testing::Combine(::testing::Values(Protocol::kDynamic, Protocol::kHybrid,
                                         Protocol::kTwoPhase),
                       ::testing::Range<std::uint64_t>(1, 7)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(CrashStress, RepeatedCrashRecoverCyclesUnderLoad) {
  Runtime rt(/*record_history=*/false);
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  {
    auto setup = rt.begin();
    acct->invoke(*setup, account::deposit(1000));
    rt.commit(setup);
  }
  std::int64_t committed_delta = 0;
  SplitMix64 rng(5);
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      auto t = rt.begin();
      const std::int64_t amount = rng.range(1, 5);
      acct->invoke(*t, account::deposit(amount));
      if (rng.chance(1, 3)) {
        rt.abort(t);
      } else {
        rt.commit(t);
        committed_delta += amount;
      }
    }
    rt.crash();
    rt.recover();
    EXPECT_EQ(acct->committed_state(), 1000 + committed_delta)
        << "cycle " << cycle;
  }
}

}  // namespace
}  // namespace argus
