// Deadlock-resolution paths at the protocol level: multi-transaction
// cycles across objects, victim selection, waiter wake-up, and system
// liveness after resolution.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "core/runtime.h"
#include "spec/adts/counter.h"
#include "spec/adts/int_set.h"
#include "test_util.h"

namespace argus {
namespace {

TEST(DeadlockPaths, ThreeWayCycleResolvesToProgress) {
  // t0 holds c0 wants c1; t1 holds c1 wants c2; t2 holds c2 wants c0.
  Runtime rt;
  std::vector<std::shared_ptr<DynamicAtomicObject<CounterAdt>>> counters;
  for (int i = 0; i < 3; ++i) {
    counters.push_back(
        rt.create_dynamic<CounterAdt>("c" + std::to_string(i)));
  }
  std::vector<std::shared_ptr<Transaction>> txns;
  for (int i = 0; i < 3; ++i) {
    auto t = rt.begin();
    counters[static_cast<std::size_t>(i)]->invoke(*t, counter::increment());
    txns.push_back(std::move(t));
  }

  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      const auto next = static_cast<std::size_t>((i + 1) % 3);
      try {
        counters[next]->invoke(*txns[static_cast<std::size_t>(i)],
                               counter::increment());
        rt.commit(txns[static_cast<std::size_t>(i)]);
        ++committed;
      } catch (const TransactionAborted&) {
        rt.abort(txns[static_cast<std::size_t>(i)]);
        ++aborted;
      }
    });
  }
  for (auto& t : threads) t.join();

  // At least one victim, at least one survivor; everyone terminated.
  EXPECT_GE(aborted.load(), 1);
  EXPECT_GE(committed.load(), 1);
  EXPECT_EQ(aborted.load() + committed.load(), 3);
  EXPECT_GE(rt.tm().detector().deadlocks_resolved(), 1u);

  // The system stays live afterwards.
  auto t = rt.begin();
  for (auto& c : counters) c->invoke(*t, counter::increment());
  rt.commit(t);
}

TEST(DeadlockPaths, VictimIsYoungest) {
  Runtime rt;
  auto a = rt.create_dynamic<CounterAdt>("a");
  auto b = rt.create_dynamic<CounterAdt>("b");
  auto t_old = rt.begin();
  auto t_new = rt.begin();
  a->invoke(*t_old, counter::increment());
  b->invoke(*t_new, counter::increment());

  auto blocked_old = std::async(std::launch::async, [&] {
    try {
      b->invoke(*t_old, counter::increment());
      rt.commit(t_old);
      return true;
    } catch (const TransactionAborted&) {
      rt.abort(t_old);
      return false;
    }
  });
  bool new_aborted = false;
  try {
    a->invoke(*t_new, counter::increment());
    rt.commit(t_new);
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kDeadlock);
    rt.abort(t_new);
    new_aborted = true;
  }
  const bool old_committed = blocked_old.get();
  // The younger transaction is the victim; the older one completes.
  EXPECT_TRUE(new_aborted);
  EXPECT_TRUE(old_committed);
}

TEST(DeadlockPaths, VictimWokenFromWait) {
  // The victim is parked inside await() at the moment it is doomed; the
  // detector's wake path must get it out promptly (well under the
  // object's wait timeout).
  Runtime rt;
  auto a = rt.create_dynamic<CounterAdt>("a");
  auto b = rt.create_dynamic<CounterAdt>("b");
  rt.set_wait_timeout_all(std::chrono::milliseconds(30000));  // no timeouts
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  a->invoke(*t1, counter::increment());
  b->invoke(*t2, counter::increment());

  const auto start = std::chrono::steady_clock::now();
  auto fut = std::async(std::launch::async, [&] {
    try {
      b->invoke(*t1, counter::increment());
      rt.commit(t1);
    } catch (const TransactionAborted&) {
      rt.abort(t1);
    }
  });
  try {
    a->invoke(*t2, counter::increment());
    rt.commit(t2);
  } catch (const TransactionAborted&) {
    rt.abort(t2);
  }
  fut.get();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(DeadlockPaths, NoFalseDeadlockOnSharedWaits) {
  // Several transactions waiting on the same holder is not a cycle; when
  // the holder commits, all proceed (increments serialize behind it).
  Runtime rt;
  auto c = rt.create_dynamic<CounterAdt>("c");
  auto holder = rt.begin();
  c->invoke(*holder, counter::increment());

  std::atomic<int> succeeded{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      auto t = rt.begin();
      try {
        c->invoke(*t, counter::increment());
        rt.commit(t);
        ++succeeded;
      } catch (const TransactionAborted&) {
        rt.abort(t);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(rt.tm().detector().deadlocks_resolved(), 0u);
  rt.commit(holder);
  for (auto& w : waiters) w.join();
  EXPECT_EQ(succeeded.load(), 3);
  EXPECT_EQ(rt.tm().detector().deadlocks_resolved(), 0u);
  EXPECT_EQ(c->committed_state(), 4);
}

}  // namespace
}  // namespace argus
