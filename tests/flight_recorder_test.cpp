// FlightRecorder behaviour: shard-per-thread capture merges into a
// well-formed, checker-clean history; bounded shards keep the suffix;
// drains are incremental and race-free against concurrent recording.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "check/atomicity.h"
#include "hist/wellformed.h"
#include "obs/flight_recorder.h"
#include "sim/scenarios.h"
#include "sim/workload.h"
#include "spec/adts/bank_account.h"
#include "test_util.h"
#include "txn/clock.h"

namespace argus {
namespace {

using namespace testutil;

TEST(FlightRecorder, SingleThreadPreservesRecordOrder) {
  LamportClock clock;
  FlightRecorder rec(clock);
  rec.record(invoke(X, A, op("insert", 3)));
  rec.record(respond(X, A, ok()));
  rec.record(commit(X, A));
  const History h = rec.snapshot();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h.at(0).kind, EventKind::kInvoke);
  EXPECT_EQ(h.at(1).kind, EventKind::kRespond);
  EXPECT_EQ(h.at(2).kind, EventKind::kCommit);
  EXPECT_TRUE(check_well_formed(h).ok());
  EXPECT_EQ(rec.shard_count(), 1u);
  EXPECT_EQ(rec.total_recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorder, ConcurrentShardsMergeIntoWellFormedHistory) {
  LamportClock clock;
  FlightRecorder rec(clock);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Each thread runs its own activities; merged result must still
        // be well-formed per activity.
        const ActivityId a{static_cast<std::uint64_t>(t * kPerThread + i)};
        rec.record(invoke(X, a, op("insert", t)));
        rec.record(respond(X, a, ok()));
        rec.record(commit(X, a));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(rec.shard_count(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(rec.total_recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread * 3));
  const History h = rec.snapshot();
  ASSERT_EQ(h.size(), static_cast<std::size_t>(kThreads * kPerThread * 3));
  const auto wf = check_well_formed(h);
  EXPECT_TRUE(wf.ok()) << wf.summary();
}

TEST(FlightRecorder, RuntimeWorkloadHistoryIsCheckerClean) {
  // End-to-end: the production recording path (flight mode) feeds the
  // same offline checkers the seed's global-mutex recorder did.
  Runtime rt;  // default: RecorderMode::kFlight
  ASSERT_EQ(rt.recorder_mode(), Runtime::RecorderMode::kFlight);
  auto bank = BankScenario::create(rt, Protocol::kHybrid, 4, 1000);
  WorkloadOptions options;
  options.threads = 4;
  options.transactions_per_thread = 50;
  options.seed = 7;
  WorkloadDriver driver(rt, options);
  (void)driver.run({bank.transfer_mix(1, 3), bank.audit_mix(true, 1)});

  const History h = rt.history();
  EXPECT_GT(h.size(), 0u);
  const auto r = check_hybrid_atomic(rt.system(), h);
  EXPECT_TRUE(r.ok) << r.explanation;
}

TEST(FlightRecorder, SequencesAreStrictlyIncreasingAcrossDrain) {
  LamportClock clock;
  FlightRecorder rec(clock);
  for (int i = 0; i < 10; ++i) {
    const ActivityId a{static_cast<std::uint64_t>(i)};
    rec.record(invoke(X, a, op("inc")));
    rec.record(respond(X, a, ok()));
  }
  const auto drained = rec.drain_new();
  ASSERT_EQ(drained.size(), 20u);
  for (std::size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LT(drained[i - 1].seq, drained[i].seq);
  }
  // Nothing new: the cursors advanced.
  EXPECT_TRUE(rec.drain_new().empty());
  rec.record(commit(X, A));
  const auto more = rec.drain_new();
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].event.kind, EventKind::kCommit);
  // snapshot() is unaffected by draining.
  EXPECT_EQ(rec.snapshot().size(), 21u);
}

TEST(FlightRecorder, BoundedShardKeepsMostRecentSuffix) {
  LamportClock clock;
  FlightRecorder rec(clock, {.shard_capacity = 8});
  constexpr int kTotal = 30;
  for (int i = 0; i < kTotal; ++i) {
    rec.record(invoke(X, ActivityId{static_cast<std::uint64_t>(i)},
                      op("insert", i)));
  }
  EXPECT_EQ(rec.total_recorded(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(rec.dropped(), static_cast<std::uint64_t>(kTotal - 8));
  const History h = rec.snapshot();
  ASSERT_EQ(h.size(), 8u);
  // Exactly the suffix, in order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(h.at(static_cast<std::size_t>(i)).activity,
              ActivityId{static_cast<std::uint64_t>(kTotal - 8 + i)});
  }
  // tail() narrows further.
  const History t = rec.tail(3);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.at(2).activity, ActivityId{kTotal - 1});
}

TEST(FlightRecorder, ClearResetsRetainedEventsAndCursors) {
  LamportClock clock;
  FlightRecorder rec(clock, {.shard_capacity = 4});
  for (int i = 0; i < 10; ++i) {
    rec.record(invoke(X, ActivityId{static_cast<std::uint64_t>(i)},
                      op("inc")));
  }
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.drain_new().empty());
  // Ring positions realign after clear: new events are retained afresh.
  for (int i = 0; i < 3; ++i) {
    rec.record(invoke(X, ActivityId{static_cast<std::uint64_t>(100 + i)},
                      op("inc")));
  }
  const History h = rec.snapshot();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h.at(0).activity, ActivityId{100});
  EXPECT_EQ(rec.drain_new().size(), 3u);
}

TEST(FlightRecorder, DrainDuringConcurrentRecordingLosesNothing) {
  // Exercises the reader/writer interleaving (run under
  // ARGUS_SANITIZE=thread in CI). Incremental drains plus one final
  // drain must account for every recorded event exactly once.
  LamportClock clock;
  FlightRecorder rec(clock);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.record(invoke(X,
                          ActivityId{static_cast<std::uint64_t>(
                              t * kPerThread + i)},
                          op("inc")));
      }
    });
  }
  std::size_t drained_total = 0;
  std::thread reader([&] {
    while (!done.load()) {
      drained_total += rec.drain_new().size();
      (void)rec.snapshot();
    }
  });
  for (auto& th : writers) th.join();
  done.store(true);
  reader.join();
  drained_total += rec.drain_new().size();
  EXPECT_EQ(drained_total, static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.snapshot().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace argus
