// HybridBag ("semiqueue") tests: nondeterminism as a concurrency lever
// (§1's [Weihl & Liskov 83] point), claims discipline, snapshots,
// recovery, and formal hybrid-atomicity of recorded histories.
#include <gtest/gtest.h>

#include <thread>

#include "check/atomicity.h"
#include "common/rng.h"
#include "core/runtime.h"
#include "hist/wellformed.h"
#include "test_util.h"

namespace argus {
namespace {

TEST(HybridBag, InsertRemoveRoundTrip) {
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  auto t1 = rt.begin();
  bag->invoke(*t1, bag::insert(5));
  bag->invoke(*t1, bag::insert(7));
  rt.commit(t1);
  auto t2 = rt.begin();
  const auto a = bag->invoke(*t2, bag::remove()).as_int();
  const auto b = bag->invoke(*t2, bag::remove()).as_int();
  rt.commit(t2);
  EXPECT_TRUE((a == 5 && b == 7) || (a == 7 && b == 5));
  EXPECT_TRUE(bag->committed_contents().empty());
}

TEST(HybridBag, ConcurrentRemoversDoNotConflict) {
  // THE point of the type: two concurrent removers claim different
  // instances and neither blocks — a FIFO queue would serialize them.
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  auto setup = rt.begin();
  bag->invoke(*setup, bag::insert(1));
  bag->invoke(*setup, bag::insert(2));
  rt.commit(setup);

  auto ta = rt.begin();
  auto tb = rt.begin();
  const auto got_a = bag->invoke(*ta, bag::remove()).as_int();  // no block
  const auto got_b = bag->invoke(*tb, bag::remove()).as_int();  // no block
  EXPECT_NE(got_a, got_b);  // disjoint claims
  rt.commit(tb);
  rt.commit(ta);
  EXPECT_TRUE(bag->committed_contents().empty());

  const auto verdict = check_hybrid_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(HybridBag, DuplicateInstancesClaimedSeparately) {
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  auto setup = rt.begin();
  bag->invoke(*setup, bag::insert(9));
  bag->invoke(*setup, bag::insert(9));
  rt.commit(setup);

  auto ta = rt.begin();
  auto tb = rt.begin();
  EXPECT_EQ(bag->invoke(*ta, bag::remove()), Value{9});
  EXPECT_EQ(bag->invoke(*tb, bag::remove()), Value{9});  // second instance
  rt.commit(ta);
  rt.commit(tb);
  EXPECT_TRUE(bag->committed_contents().empty());
}

TEST(HybridBag, RemoverWaitsWhenAllInstancesClaimed) {
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  auto setup = rt.begin();
  bag->invoke(*setup, bag::insert(1));
  rt.commit(setup);

  auto ta = rt.begin();
  EXPECT_EQ(bag->invoke(*ta, bag::remove()), Value{1});
  auto tb = rt.begin();
  auto blocked = testutil::expect_blocks([&] {
    // After ta aborts, the instance is unclaimed again.
    EXPECT_EQ(bag->invoke(*tb, bag::remove()), Value{1});
    rt.commit(tb);
  });
  rt.abort(ta);
  testutil::join_within(blocked);
  EXPECT_TRUE(bag->committed_contents().empty());
}

TEST(HybridBag, RemoverWaitsForCommittedInsert) {
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  auto producer = rt.begin();
  bag->invoke(*producer, bag::insert(4));  // tentative: not removable
  auto consumer = rt.begin();
  auto blocked = testutil::expect_blocks([&] {
    EXPECT_EQ(bag->invoke(*consumer, bag::remove()), Value{4});
    rt.commit(consumer);
  });
  rt.commit(producer);
  testutil::join_within(blocked);
}

TEST(HybridBag, AbortReleasesClaimsAndInserts) {
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  auto setup = rt.begin();
  bag->invoke(*setup, bag::insert(1));
  rt.commit(setup);

  auto t = rt.begin();
  bag->invoke(*t, bag::insert(2));
  EXPECT_EQ(bag->invoke(*t, bag::remove()), Value{1});
  rt.abort(t);
  const auto contents = bag->committed_contents();
  EXPECT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents.at(1), 1);
}

TEST(HybridBag, ReadOnlySizeSnapshot) {
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  auto t1 = rt.begin();
  bag->invoke(*t1, bag::insert(1));
  rt.commit(t1);

  auto reader = rt.begin_read_only();
  auto t2 = rt.begin();
  bag->invoke(*t2, bag::insert(2));
  rt.commit(t2);
  EXPECT_EQ(bag->invoke(*reader, bag::size()), Value{1});  // snapshot below t
  rt.commit(reader);
}

TEST(HybridBag, UpdateSizeRejected) {
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  auto t = rt.begin();
  EXPECT_THROW(bag->invoke(*t, bag::size()), UsageError);
  rt.abort(t);
}

TEST(HybridBag, RecoveryRebuildsContents) {
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  auto t1 = rt.begin();
  bag->invoke(*t1, bag::insert(1));
  bag->invoke(*t1, bag::insert(2));
  rt.commit(t1);
  auto t2 = rt.begin();
  bag->invoke(*t2, bag::remove());
  rt.commit(t2);
  const auto before = bag->committed_contents();

  rt.crash();
  rt.recover();
  EXPECT_EQ(bag->committed_contents(), before);
}

class HybridBagProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridBagProperty, HistoriesAreHybridAtomic) {
  const std::uint64_t seed = GetParam();
  Runtime rt;
  auto bag = rt.create_hybrid_bag("b");
  bag->set_wait_timeout(std::chrono::milliseconds(500));
  {
    auto t = rt.begin();
    for (int i = 0; i < 6; ++i) bag->invoke(*t, bag::insert(i % 3));
    rt.commit(t);
  }

  std::mutex ro_mu;
  std::unordered_set<ActivityId> read_only;
  auto worker = [&](int index) {
    SplitMix64 rng(seed * 6151ULL + static_cast<std::uint64_t>(index));
    for (int k = 0; k < 2; ++k) {
      const bool ro = rng.chance(1, 4);
      auto txn = ro ? rt.begin_read_only() : rt.begin();
      if (ro) {
        const std::scoped_lock lock(ro_mu);
        read_only.insert(txn->id());
      }
      try {
        if (ro) {
          bag->invoke(*txn, bag::size());
        } else if (rng.chance(1, 2)) {
          bag->invoke(*txn, bag::insert(rng.range(0, 4)));
        } else {
          bag->invoke(*txn, bag::remove());
        }
        if (!ro && rng.chance(1, 5)) {
          rt.abort(txn);
        } else {
          rt.commit(txn);
        }
      } catch (const TransactionAborted&) {
        rt.abort(txn);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  const History h = rt.history();
  const auto wf = check_well_formed_hybrid(h, read_only);
  ASSERT_TRUE(wf.ok()) << wf.summary() << "\n" << h.to_string();
  const auto verdict = check_hybrid_atomic(rt.system(), h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << h.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridBagProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace argus
