// The model-checking tier's main gate: enumerate {schedule source x
// object family x fault mix x seed}, run every cell under the
// deterministic scheduler, and certify each explored interleaving with
// the formal checkers plus the live sentinel.
//
//   * Default: 512 configurations (2 sources x 4 families x 4 mixes x 16
//     seeds), all of which must certify with zero atomicity violations.
//   * ARGUS_DSCHED_DEEP=<n> scales seeds_per_cell to n (the nightly /
//     workflow-input CI mode).
//   * ARGUS_DSCHED_ARTIFACT_DIR=<dir>: on failure, every auto-minimized
//     failing configuration is written there as a replayable config file
//     (uploaded by CI as the minimized-schedule artifact).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/sched_explore.h"

namespace argus {
namespace {

std::uint64_t deep_seeds_or(std::uint64_t fallback) {
  const char* deep = std::getenv("ARGUS_DSCHED_DEEP");
  if (deep == nullptr || *deep == '\0') return fallback;
  const unsigned long long n = std::strtoull(deep, nullptr, 10);
  return n > 0 ? n : fallback;
}

void write_failure_artifacts(const SchedExploreSummary& summary) {
  const char* dir = std::getenv("ARGUS_DSCHED_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0' || summary.failures.empty()) return;
  std::filesystem::create_directories(dir);
  int index = 0;
  for (const SchedExploreFailure& f : summary.failures) {
    const auto path = std::filesystem::path(dir) /
                      ("minimized_" + std::to_string(index++) + ".txt");
    std::ofstream out(path);
    out << "# auto-minimized failing schedule (replay: sched_corpus_test)\n"
        << "# failure:\n";
    std::istringstream why(f.failure);
    std::string line;
    while (std::getline(why, line)) out << "#   " << line << "\n";
    out << to_config_string(f.minimized);
  }
}

TEST(SchedExplore, EveryEnumeratedConfigurationCertifies) {
  SchedExploreOptions options;
  options.seeds_per_cell = deep_seeds_or(16);
  const auto cases = enumerate_sched_cases(options);
  ASSERT_GE(cases.size(), 500u)
      << "the explorer must cover at least 500 {schedule x fault} cells";

  const SchedExploreSummary summary = run_sched_explore(options);
  write_failure_artifacts(summary);

  EXPECT_EQ(summary.cases, cases.size());
  EXPECT_EQ(summary.certified, summary.cases);
  std::string report;
  for (const SchedExploreFailure& f : summary.failures) {
    report += "\n--- " + to_string(f.config.kind) + "/" +
              to_string(f.config.protocol) + "/" + f.config.adt + " seed " +
              std::to_string(f.config.seed) + ":\n" + f.failure +
              "\nminimized replay:\n" + to_config_string(f.minimized);
  }
  EXPECT_TRUE(summary.all_ok()) << report;

  // The sweep must actually exercise both dimensions: schedules moved
  // (steps accrued) and the fault mixes injected faults somewhere.
  EXPECT_GT(summary.schedule_steps, summary.cases * 10);
  EXPECT_GT(summary.faults_injected, 0u);
  EXPECT_GT(summary.crashed_mid_run, 0u)
      << "the pinned-crash mix never fired";
  EXPECT_GT(summary.committed, summary.cases)
      << "workloads barely committed anything — scheduler starvation?";
}

TEST(SchedExplore, EnumerationIsDeterministic) {
  const auto a = enumerate_sched_cases();
  const auto b = enumerate_sched_cases();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "case " << i;
  }
  // Seeds are pairwise distinct: no two cells share a decision stream.
  for (std::size_t i = 1; i < a.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      ASSERT_NE(a[i].seed, a[j].seed) << "cases " << i << " and " << j;
    }
  }
}

}  // namespace
}  // namespace argus
