// VectorClockChecker unit tests: canonical order, the memoized conflict
// relation, eager fold certification, escalation, immediate violations,
// and straggler handling. The bulk differential certification against
// the exact checkers lives in vc_differential_test (label vccheck).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/atomicity.h"
#include "check/vc_atomicity.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

SystemSpec one_set() {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  return sys;
}

TEST(CanonicalOrder, TimestampsAndCommitPositionsShareOneAxis) {
  // b commits first (seq 3) without a timestamp; a carries commit stamp 1
  // (a hybrid update), so a serializes before b despite committing later.
  History h = hist({
      invoke(X, B, op("insert", 1)),
      respond(X, B, ok()),
      commit(X, B),  // first commit: seq 3
      invoke(X, A, op("insert", 2)),
      respond(X, A, ok()),
      commit_at(X, A, 1),
  });
  const auto order = canonical_order(h);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], A);
  EXPECT_EQ(order[1], B);
}

TEST(CanonicalOrder, UncommittedActivitiesAreExcluded) {
  History h = hist({
      invoke(X, B, op("insert", 1)),
      respond(X, B, ok()),
      abort(X, B),
      invoke(X, A, op("member", 1)),
      respond(X, A, Value{false}),
      commit(X, A),
  });
  const auto order = canonical_order(h);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], A);
}

TEST(ConflictRelationTest, ClassifiesSetOperationPairs) {
  const auto sys = one_set();
  ConflictRelation rel(sys);
  // Different elements never interact.
  EXPECT_EQ(rel.classify(X, op("insert", 1), op("member", 2)),
            PairCommutativity::kAlways);
  // Same element: insert(1) changes member(1)'s answer.
  EXPECT_NE(rel.classify(X, op("insert", 1), op("member", 1)),
            PairCommutativity::kAlways);
  EXPECT_TRUE(rel.conflicts(X, op("insert", 1), op("member", 1)));
  // Symmetric and memoized: the reverse query hits the cache.
  const auto probes_before = rel.probes();
  EXPECT_TRUE(rel.conflicts(X, op("member", 1), op("insert", 1)));
  EXPECT_EQ(rel.probes(), probes_before);
}

TEST(ConflictRelationTest, BagInsertRemoveIsDataDependent) {
  SystemSpec sys;
  sys.add_object(X, "bag");
  ConflictRelation rel(sys);
  // The paper's data-dependent fragment: two bag removes (or an insert
  // against a remove) commute in some states only.
  EXPECT_EQ(rel.classify(X, op("insert", 1), op("remove")),
            PairCommutativity::kStateDependent);
  EXPECT_TRUE(rel.data_dependent(X, op("remove"), op("remove")));
}

TEST(ConflictRelationTest, DepositsAlwaysCommuteButIncrementsConflict) {
  SystemSpec sys;
  sys.add_object(X, "bank_account");
  sys.add_object(Y, "counter");
  ConflictRelation rel(sys);
  EXPECT_EQ(rel.classify(X, op("deposit", 1), op("deposit", 2)),
            PairCommutativity::kAlways);
  // The optimality object's increment returns the running count, so two
  // increments never commute — their results expose the order.
  EXPECT_NE(rel.classify(Y, op("increment"), op("increment")),
            PairCommutativity::kAlways);
}

TEST(VcChecker, CleanTraceCertifiesOnTheFastPath) {
  const auto sys = one_set();
  History h = hist({
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      commit(X, B),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{true}),
      commit(X, A),
  });
  for (const std::size_t window : {std::size_t{0}, std::size_t{2}}) {
    const VcReport report = check_vc_atomic(sys, h, {}, window);
    EXPECT_EQ(report.verdict, VcVerdict::kPass) << "window " << window;
    EXPECT_EQ(report.stats.certified, 2u);
    EXPECT_EQ(report.stats.folds, 2u);
    EXPECT_EQ(report.stats.escalations, 0u);
    EXPECT_EQ(report.stats.violations, 0u);
  }
}

TEST(VcChecker, StaleReadIsAViolationUnderEscalation) {
  const auto sys = one_set();
  // b's insert(3) commits before a, yet a observed member(3)=false: not
  // serializable in canonical (first-commit) order.
  History h = hist({
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{false}),
      commit(X, B),
      commit(X, A),
  });
  ASSERT_FALSE(check_canonical_atomic(sys, h).ok);
  for (const std::size_t window : {std::size_t{0}, std::size_t{2}}) {
    const VcReport esc = check_vc_atomic(sys, h, {}, window);
    EXPECT_EQ(esc.verdict, VcVerdict::kViolation) << "window " << window;
    ASSERT_FALSE(esc.reports.empty());
    EXPECT_NE(esc.reports.front().find("not serializable"),
              std::string::npos);

    // Without escalation the fast path must not PASS it either; it
    // quarantines the suspect and stays honest about the unresolved
    // verdict.
    VcCheckerOptions vc_only;
    vc_only.escalate = false;
    const VcReport vc = check_vc_atomic(sys, h, vc_only, window);
    EXPECT_NE(vc.verdict, VcVerdict::kPass) << "window " << window;
  }
}

TEST(VcChecker, CommutingSwapCertifiesWithoutEscalation) {
  // Hybrid-style commit stamps invert the fold order (b folds first with
  // key 2, then a with key 1), but deposits always commute: the fast
  // path certifies without any escalation.
  SystemSpec sys;
  sys.add_object(X, "bank_account");
  History h = hist({
      invoke(X, B, op("deposit", 5)),
      respond(X, B, ok()),
      invoke(X, A, op("deposit", 3)),
      respond(X, A, ok()),
      commit_at(X, B, 2),
      commit_at(X, A, 1),
  });
  const VcReport report = check_vc_atomic(sys, h, {}, 2);
  EXPECT_EQ(report.verdict, VcVerdict::kPass);
  EXPECT_EQ(report.stats.certified, 2u);
  EXPECT_EQ(report.stats.escalations, 0u);
}

TEST(VcChecker, ConflictingSwapEscalatesAndResolves) {
  // The same inversion with a real conflict: member(3) folds before the
  // insert it canonically precedes. The mis-ordered conflict is
  // suspicious; escalation re-replays canonically (a then b) and
  // certifies both.
  const auto sys = one_set();
  History h = hist({
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{false}),
      commit_at(X, B, 2),
      commit_at(X, A, 1),
  });
  ASSERT_TRUE(check_canonical_atomic(sys, h).ok);
  const VcReport esc = check_vc_atomic(sys, h, {}, 0);
  EXPECT_EQ(esc.verdict, VcVerdict::kPass);
  EXPECT_EQ(esc.stats.escalations, 1u);
  EXPECT_GE(esc.stats.suspicious, 1u);
  EXPECT_EQ(esc.stats.certified, 2u);

  // The monitoring-only mode quarantines instead: no PASS claim.
  VcCheckerOptions vc_only;
  vc_only.escalate = false;
  const VcReport vc = check_vc_atomic(sys, h, vc_only, 0);
  EXPECT_EQ(vc.verdict, VcVerdict::kSuspicious);
  EXPECT_GE(vc.stats.unresolved, 1u);
  EXPECT_EQ(vc.stats.violations, 0u);
}

TEST(VcChecker, StragglerBelowTheCheckpointIsQuarantined) {
  const auto sys = one_set();
  VcCheckerOptions options;
  options.checkpoint_threshold = 1;  // seal at the first window
  VectorClockChecker checker(sys, options);
  checker.feed({1, invoke(X, B, op("insert", 5))});
  checker.feed({2, respond(X, B, ok())});
  checker.feed({3, commit(X, B)});
  checker.advance_frontier(100);  // seals the epoch; checkpoint key 3
  ASSERT_EQ(checker.stats().checkpoints, 1u);

  // a commits with stamp 2 — below the sealed prefix — and its member(5)
  // conflicts with the sealed insert(5): quarantined, counted, never a
  // violation.
  checker.feed({4, invoke(X, A, op("member", 5))});
  checker.feed({5, respond(X, A, Value{false})});
  checker.feed({6, commit_at(X, A, 2)});
  checker.finish();
  EXPECT_EQ(checker.stats().stragglers, 1u);
  EXPECT_EQ(checker.stats().violations, 0u);
  EXPECT_EQ(checker.verdict(), VcVerdict::kSuspicious);
}

TEST(VcChecker, CommutingStragglerIsFoldedInPlace) {
  SystemSpec sys;
  sys.add_object(X, "bank_account");
  VcCheckerOptions options;
  options.checkpoint_threshold = 1;
  VectorClockChecker checker(sys, options);
  checker.feed({1, invoke(X, B, op("deposit", 5))});
  checker.feed({2, respond(X, B, ok())});
  checker.feed({3, commit(X, B)});
  checker.advance_frontier(100);
  ASSERT_EQ(checker.stats().checkpoints, 1u);

  // a arrives below the checkpoint, but its deposit always-commutes with
  // the sealed deposit: folded by commutation, verdict stays PASS.
  checker.feed({4, invoke(X, A, op("deposit", 3))});
  checker.feed({5, respond(X, A, ok())});
  checker.feed({6, commit_at(X, A, 2)});
  checker.finish();
  EXPECT_EQ(checker.stats().stragglers, 0u);
  EXPECT_EQ(checker.stats().straggler_resolved, 1u);
  EXPECT_EQ(checker.verdict(), VcVerdict::kPass);
  EXPECT_EQ(checker.stats().certified, 2u);
}

TEST(VcChecker, AbortedActivityImposesNoConstraint) {
  const auto sys = one_set();
  History h = hist({
      invoke(X, B, op("insert", 3)),
      respond(X, B, ok()),
      abort(X, B),
      invoke(X, A, op("member", 3)),
      respond(X, A, Value{false}),
      commit(X, A),
  });
  const VcReport report = check_vc_atomic(sys, h, {}, 2);
  EXPECT_EQ(report.verdict, VcVerdict::kPass);
  EXPECT_EQ(report.stats.certified, 1u);
}

TEST(VcChecker, OpenInitiationHoldsTheFrontier) {
  // r initiates at stamp 1 and stays open while b folds at key 5: b's
  // certificate must stay provisional until r resolves. r then commits
  // reading the pre-b state — consistent with its stamp — and both
  // certify.
  const auto sys = one_set();
  VectorClockChecker checker(sys, {});
  checker.feed({1, initiate(X, R, 1)});
  checker.feed({2, invoke(X, B, op("insert", 7))});
  checker.feed({3, respond(X, B, ok())});
  checker.feed({4, commit(X, B)});
  checker.advance_frontier(4);  // frontier clamps to the open initiation
  checker.feed({5, invoke(X, R, op("member", 7))});
  checker.feed({6, respond(X, R, Value{false})});
  checker.feed({7, commit(X, R)});
  checker.finish();
  EXPECT_EQ(checker.verdict(), VcVerdict::kPass) << checker.last_suspicion();
  EXPECT_EQ(checker.stats().certified, 2u);
  EXPECT_EQ(checker.stats().violations, 0u);
}

}  // namespace
}  // namespace argus
