// StableLog failure semantics under fault injection: torn forces
// stabilize exactly a prefix, the requeued tail either restabilizes or is
// failed by drop_pending (never silently lost, never half-applied),
// transient force failures retry then surface as I/O errors, and the
// crash path is idempotent. Concurrency here is real (committer threads),
// so these tests double as TSan coverage for the injector hooks.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <thread>

#include "core/runtime.h"
#include "fault/fault.h"
#include "spec/adts/bank_account.h"
#include "txn/stable_log.h"

namespace argus {
namespace {

CommitLogRecord record_with_ts(std::uint64_t ts) {
  CommitLogRecord r;
  r.txn = ActivityId{ts};
  r.commit_ts = ts;
  r.start_ts = ts;
  return r;
}

std::vector<Timestamp> forced_timestamps(const StableLog& log) {
  std::vector<Timestamp> out;
  for (const auto& r : log.records()) out.push_back(r.commit_ts);
  return out;
}

TEST(StableLogFaults, SingleRecordTornForceRequeuesThenRestabilizes) {
  // A torn force over a batch of one stabilizes prefix 0: the record goes
  // back to the queue and the next (budget-exhausted, clean) force lands
  // it. The committer never observes the tear — only the stats do.
  FaultPlan plan;
  plan.seed = 11;
  plan.torn_batch_permille = 1000;
  plan.max_faults = 1;
  FaultInjector injector(plan);

  StableLog log;
  log.set_fault_injector(&injector);
  EXPECT_EQ(log.append_group(record_with_ts(1)), AppendResult::kForced);

  const auto stats = log.group_stats();
  EXPECT_EQ(stats.torn_forces, 1u);
  EXPECT_EQ(stats.records_requeued, 1u);
  EXPECT_EQ(stats.forces, 2u);  // the torn attempt + the clean retry
  EXPECT_EQ(stats.records_forced, 1u);
  EXPECT_EQ(log.size(), 1u);
  log.set_fault_injector(nullptr);
}

TEST(StableLogFaults, TornForceStabilizesExactlyThePrefix) {
  // Build a three-record batch deterministically: the first committer
  // parks as flush leader on hold_flushes (its clean decision predates
  // the injector), three more enqueue behind it, and the injector is
  // attached before release — so the *second* force (the full
  // three-record batch) is injector arrival 1. Pick a seed whose arrival
  // 1 tears at prefix 1 by asking a scratch injector.
  FaultPlan plan;
  plan.torn_batch_permille = 1000;
  plan.max_faults = 1;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 512 && !found; ++seed) {
    plan.seed = seed;
    FaultInjector scratch(plan);
    const auto d = scratch.on_force(3);
    found = d.torn && d.stable_prefix == 1;
  }
  ASSERT_TRUE(found) << "no seed tears a 3-batch at prefix 1";
  FaultInjector injector(plan);

  StableLog log;
  log.hold_flushes();
  std::array<AppendResult, 4> results{};
  std::thread leader(
      [&] { results[0] = log.append_group(record_with_ts(1)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::vector<std::thread> followers;
  for (std::uint64_t i = 2; i <= 4; ++i) {
    followers.emplace_back(
        [&, i] { results[i - 1] = log.append_group(record_with_ts(i)); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  log.set_fault_injector(&injector);
  log.release_flushes();
  leader.join();
  for (auto& t : followers) t.join();

  // Every committer eventually stabilized: the torn tail was requeued and
  // the next (clean) leader landed it.
  for (const auto r : results) EXPECT_EQ(r, AppendResult::kForced);
  const auto stats = log.group_stats();
  EXPECT_EQ(stats.torn_forces, 1u);
  EXPECT_EQ(stats.records_requeued, 2u);  // 3-batch minus prefix 1
  EXPECT_EQ(stats.forces, 3u);  // [r1], torn 3-batch, requeued pair
  EXPECT_EQ(stats.records_forced, 4u);
  EXPECT_EQ(stats.max_batch, 2u);
  EXPECT_EQ(log.size(), 4u);
  log.set_fault_injector(nullptr);
}

TEST(StableLogFaults, DropPendingAfterTornForceFailsExactlyTheUnstabilized) {
  // Torn forces forever (every leader tears, every force pays a latency
  // spike). Once the first tear completes, the requeued tail sits behind
  // a leader sleeping its latency out — drop_pending lands in that window
  // and must fail exactly the committers whose records never stabilized.
  FaultPlan plan;
  plan.seed = 23;
  plan.torn_batch_permille = 1000;
  plan.leader_latency_permille = 1000;
  plan.leader_latency_us = 50000;
  plan.max_faults = 10;  // livelock backstop: eventually forces go clean
  FaultInjector injector(plan);

  StableLog log;
  log.set_fault_injector(&injector);

  std::array<AppendResult, 4> results{};
  std::vector<std::thread> committers;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    committers.emplace_back(
        [&, i] { results[i - 1] = log.append_group(record_with_ts(i)); });
  }
  while (log.group_stats().torn_forces == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  log.drop_pending();
  for (auto& t : committers) t.join();

  std::vector<Timestamp> forced_ts;
  std::size_t dropped = 0;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    switch (results[i - 1]) {
      case AppendResult::kForced:
        forced_ts.push_back(i);
        break;
      case AppendResult::kDropped:
        ++dropped;
        break;
      case AppendResult::kIoError:
        ADD_FAILURE() << "no force failures were planned";
    }
  }
  // Exactness: the committers told "forced" are exactly the records the
  // log holds; everyone else was told "dropped"; nobody is missing.
  auto in_log = forced_timestamps(log);
  std::sort(in_log.begin(), in_log.end());
  EXPECT_EQ(forced_ts, in_log);
  EXPECT_EQ(forced_ts.size() + dropped, 4u);
  EXPECT_GE(dropped, 1u);  // the requeued tail was pending at the drop
  EXPECT_GE(log.group_stats().torn_forces, 1u);
  EXPECT_GE(log.group_stats().records_requeued, 1u);
  log.set_fault_injector(nullptr);
}

TEST(StableLogFaults, ExhaustedForceRetriesFailTheBatchAsIoError) {
  FaultPlan plan;
  plan.seed = 31;
  plan.force_fail_permille = 1000;  // every attempt fails
  plan.force_max_retries = 2;
  plan.force_retry_backoff_us = 1;
  FaultInjector injector(plan);

  StableLog log;
  log.set_fault_injector(&injector);
  EXPECT_EQ(log.append_group(record_with_ts(1)), AppendResult::kIoError);
  const auto stats = log.group_stats();
  EXPECT_EQ(stats.force_failures, 3u);  // initial attempt + 2 retries
  EXPECT_EQ(stats.forces, 0u);          // nothing ever reached storage
  EXPECT_EQ(log.size(), 0u);
  log.set_fault_injector(nullptr);
}

TEST(StableLogFaults, TransientForceFailureRecoversOnRetry) {
  FaultPlan plan;
  plan.seed = 31;
  plan.force_fail_permille = 1000;
  plan.force_max_retries = 3;
  plan.force_retry_backoff_us = 1;
  plan.max_faults = 1;  // only the first attempt fails
  FaultInjector injector(plan);

  StableLog log;
  log.set_fault_injector(&injector);
  EXPECT_EQ(log.append_group(record_with_ts(1)), AppendResult::kForced);
  const auto stats = log.group_stats();
  EXPECT_EQ(stats.force_failures, 1u);
  EXPECT_EQ(stats.forces, 1u);
  EXPECT_EQ(log.size(), 1u);
  log.set_fault_injector(nullptr);
}

TEST(StableLogFaults, DropPendingIsIdempotent) {
  StableLog log;
  EXPECT_EQ(log.append_group(record_with_ts(1)), AppendResult::kForced);
  log.drop_pending();
  log.drop_pending();  // second crash on an already-drained log: no-op
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.append_group(record_with_ts(2)), AppendResult::kForced);
  EXPECT_EQ(log.size(), 2u);
}

TEST(StableLogFaults, DoubleRuntimeCrashIsIdempotent) {
  Runtime rt(/*record_history=*/false);
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  {
    auto t = rt.begin();
    acct->invoke(*t, account::deposit(100));
    rt.commit(t);
  }
  rt.crash();
  rt.crash();  // a crash while already down changes nothing
  rt.recover();
  EXPECT_EQ(acct->committed_state(), 100);
}

TEST(StableLogFaults, SetForceDelayRacesInFlightLeadersSafely) {
  // The knob is read under the log mutex per force; flipping it from
  // another thread mid-traffic must neither tear a read (TSan) nor lose a
  // record.
  StableLog log;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::atomic<int> forced{0};
  std::vector<std::thread> committers;
  for (int w = 0; w < kThreads; ++w) {
    committers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto ts =
            static_cast<std::uint64_t>(w * kPerThread + i + 1);
        if (log.append_group(record_with_ts(ts)) == AppendResult::kForced) {
          forced.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    log.set_force_delay(std::chrono::microseconds(i % 2 == 0 ? 0 : 20));
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  for (auto& t : committers) t.join();
  EXPECT_EQ(forced.load(), kThreads * kPerThread);
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace argus
