// Schedule-corpus replay: the checked-in configs in tests/corpus/sched/
// are minimized failing schedules worth pinning forever — interleavings
// on which a deliberately broken protocol (chaos admission) produces an
// atomicity violation. Each must (a) still reproduce its violation when
// replayed, and (b) reproduce its flight-recorder trace byte for byte on
// a second run. If a corpus entry ever starts *passing*, the replay
// machinery lost the interleaving; if its trace drifts, determinism
// broke — both are regressions in the explorer itself.
//
// The binary doubles as the schedule minimization tool:
//
//   sched_corpus_test --minimize <config-file>
//
// replays a failing config, bisects its recorded schedule to the
// shortest reproducing prefix, and prints the shrunken config (ready to
// check back into the corpus). Mirrors fault_corpus_test --minimize.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sched_explore.h"

namespace argus {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> out;
  for (const auto& entry :
       std::filesystem::directory_iterator(ARGUS_SCHED_CORPUS_DIR)) {
    if (entry.path().extension() == ".txt") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class SchedCorpus : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(SchedCorpus, StillFailsAndReplaysByteEqual) {
  const auto path = GetParam();
  SchedCase c;
  std::string error;
  ASSERT_TRUE(parse_sched_case(read_file(path), &c, &error))
      << path << ": " << error;
  ASSERT_TRUE(c.weaken_admission)
      << path << ": corpus entries pin violations of the deliberately "
                 "broken protocol; a passing config belongs elsewhere";

  const SchedCaseResult first = run_sched_case(c);
  EXPECT_FALSE(first.ok)
      << path << ": the pinned interleaving no longer reproduces its "
                 "atomicity violation";
  ASSERT_FALSE(first.trace.empty());

  const SchedCaseResult second = run_sched_case(c);
  EXPECT_EQ(first.trace, second.trace)
      << path << ": same config must reproduce the trace byte for byte";
  EXPECT_EQ(first.schedule, second.schedule);
  EXPECT_EQ(first.failure, second.failure);
}

INSTANTIATE_TEST_SUITE_P(Corpus, SchedCorpus,
                         ::testing::ValuesIn(corpus_files()),
                         [](const auto& info) {
                           std::string name = info.param.stem().string();
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

TEST(SchedCorpus, CorpusIsNotEmpty) { EXPECT_GE(corpus_files().size(), 3u); }

int minimize_main(const std::string& file) {
  SchedCase c;
  std::string error;
  if (!parse_sched_case(read_file(file), &c, &error)) {
    std::cerr << "cannot parse " << file << ": " << error << "\n";
    return 2;
  }
  const SchedCaseResult full = run_sched_case(c);
  if (full.ok) {
    std::cout << "config passes (schedule " << full.schedule
              << "); nothing to minimize\n";
    return 0;
  }
  std::cout << "config fails:\n"
            << full.failure << "\n\nminimizing over " << full.schedule.size()
            << " schedule bytes...\n";
  const SchedCase minimized = minimize_failing_schedule(
      c, full.schedule,
      [](const SchedCase& probe) { return !run_sched_case(probe).ok; });
  const SchedCaseResult shrunk = run_sched_case(minimized);
  std::cout << "\nshortest reproducing prefix: " << minimized.schedule
            << "\n\n"
            << to_config_string(minimized) << "\nfailure at that prefix:\n"
            << shrunk.failure << "\n";
  return 1;  // the config still fails — that is the point of the tool
}

}  // namespace
}  // namespace argus

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--minimize") {
    return argus::minimize_main(argv[2]);
  }
  if (argc == 2 && std::string(argv[1]) == "--minimize") {
    std::cerr << "usage: " << argv[0] << " --minimize <config-file>\n";
    return 2;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
