// FaultInjector unit tests: the determinism contract (same plan, same
// arrival order => same decisions, same trace), the fault budget, and
// the crash latch. Everything downstream — byte-equal sweep replay,
// corpus minimization — rests on these properties.
#include <gtest/gtest.h>

#include "fault/fault.h"

namespace argus {
namespace {

// A plan aggressive enough that every site fires within a few arrivals.
FaultPlan chaos_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.force_fail_permille = 300;
  plan.torn_batch_permille = 300;
  plan.leader_latency_permille = 300;
  plan.leader_latency_us = 1;  // decisions matter here, not the sleep
  plan.spurious_timeout_permille = 300;
  plan.delayed_wakeup_permille = 300;
  plan.delayed_wakeup_us = 1;
  return plan;
}

TEST(FaultInjector, SamePlanSameArrivalsSameDecisionsAndTrace) {
  const FaultPlan plan = chaos_plan(42);
  FaultInjector a(plan);
  FaultInjector b(plan);

  for (int i = 0; i < 64; ++i) {
    const auto fa = a.on_force(static_cast<std::size_t>(1 + i % 5));
    const auto fb = b.on_force(static_cast<std::size_t>(1 + i % 5));
    EXPECT_EQ(fa.fail, fb.fail) << "force " << i;
    EXPECT_EQ(fa.torn, fb.torn) << "force " << i;
    EXPECT_EQ(fa.stable_prefix, fb.stable_prefix) << "force " << i;
    EXPECT_EQ(fa.latency_us, fb.latency_us) << "force " << i;

    const auto wa = a.on_wait();
    const auto wb = b.on_wait();
    EXPECT_EQ(wa.spurious_timeout, wb.spurious_timeout) << "wait " << i;
    EXPECT_EQ(wa.extra_delay_us, wb.extra_delay_us) << "wait " << i;
  }

  EXPECT_GT(a.faults_injected(), 0u);
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_EQ(a.trace(), b.trace());
  EXPECT_EQ(a.trace_to_string(), b.trace_to_string());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(chaos_plan(1));
  FaultInjector b(chaos_plan(2));
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    const auto fa = a.on_force(4);
    const auto fb = b.on_force(4);
    diverged = fa.fail != fb.fail || fa.torn != fb.torn ||
               fa.stable_prefix != fb.stable_prefix ||
               fa.latency_us != fb.latency_us;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, DecisionsDependOnArrivalIndexNotHistory) {
  // The decision at arrival n is a pure function of (seed, site, n):
  // skipping ahead does not change what arrival n decides.
  const FaultPlan plan = chaos_plan(7);
  FaultInjector fresh(plan);
  FaultInjector warmed(plan);
  (void)warmed.on_wait();  // consume wait arrivals only
  const auto f1 = fresh.on_force(4);
  const auto f2 = warmed.on_force(4);
  EXPECT_EQ(f1.fail, f2.fail);
  EXPECT_EQ(f1.torn, f2.torn);
  EXPECT_EQ(f1.stable_prefix, f2.stable_prefix);
}

TEST(FaultInjector, BudgetCapsProbabilisticFaults) {
  FaultPlan plan;
  plan.seed = 3;
  plan.torn_batch_permille = 1000;  // every force would tear...
  plan.max_faults = 2;              // ...but only two faults may fire
  FaultInjector injector(plan);

  int torn = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.on_force(4).torn) ++torn;
  }
  EXPECT_EQ(torn, 2);
  EXPECT_EQ(injector.faults_injected(), 2u);
  EXPECT_EQ(injector.injected_at(FaultSite::kLogForce), 2u);
  EXPECT_EQ(injector.arrivals_at(FaultSite::kLogForce), 10u);
}

TEST(FaultInjector, ZeroBudgetDisablesProbabilisticFaultsButNotCrash) {
  FaultPlan plan;
  plan.seed = 3;
  plan.torn_batch_permille = 1000;
  plan.spurious_timeout_permille = 1000;
  plan.max_faults = 0;  // minimization's lower bound: nothing probabilistic
  plan.crash_point = FaultSite::kMidApply;
  plan.crash_at_arrival = 1;  // the pinned crash is configuration, not budget
  FaultInjector injector(plan);

  EXPECT_FALSE(injector.on_force(4).torn);
  EXPECT_FALSE(injector.on_wait().spurious_timeout);
  EXPECT_TRUE(injector.maybe_crash(FaultSite::kMidApply));
  EXPECT_EQ(injector.crashes_fired(), 1u);
}

TEST(FaultInjector, CrashFiresOnceAtExactlyTheNamedArrival) {
  FaultPlan plan;
  plan.seed = 9;
  plan.crash_point = FaultSite::kPostForcePreApply;
  plan.crash_at_arrival = 3;
  FaultInjector injector(plan);
  int hook_runs = 0;
  injector.set_crash_hook([&] { ++hook_runs; });

  EXPECT_FALSE(injector.maybe_crash(FaultSite::kPostForcePreApply));  // 1
  EXPECT_FALSE(injector.maybe_crash(FaultSite::kPreForce));  // other site
  EXPECT_FALSE(injector.maybe_crash(FaultSite::kPostForcePreApply));  // 2
  EXPECT_TRUE(injector.maybe_crash(FaultSite::kPostForcePreApply));   // 3
  EXPECT_FALSE(injector.maybe_crash(FaultSite::kPostForcePreApply));  // 4
  EXPECT_EQ(hook_runs, 1);
  EXPECT_EQ(injector.crashes_fired(), 1u);
  EXPECT_EQ(injector.arrivals_at(FaultSite::kPostForcePreApply), 4u);
}

TEST(FaultInjector, CrashAtArrivalZeroMeansNever) {
  FaultPlan plan;
  plan.crash_point = FaultSite::kPreForce;
  plan.crash_at_arrival = 0;
  FaultInjector injector(plan);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(injector.maybe_crash(FaultSite::kPreForce));
  }
  EXPECT_EQ(injector.crashes_fired(), 0u);
}

TEST(FaultInjector, TraceIsStampedFromTheSequenceSource) {
  FaultPlan plan;
  plan.seed = 5;
  plan.torn_batch_permille = 1000;
  FaultInjector injector(plan);
  std::uint64_t clock = 100;
  injector.set_sequence_source([&] { return clock++; });

  (void)injector.on_force(2);
  (void)injector.on_force(2);
  const auto trace = injector.trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].seq, 100u);
  EXPECT_EQ(trace[1].seq, 101u);
  EXPECT_EQ(trace[0].action, FaultAction::kTornTail);
  EXPECT_LT(trace[0].detail, 2u);  // prefix is strictly below batch size
}

TEST(FaultInjector, TraceLinesAreParseHComments) {
  FaultPlan plan;
  plan.seed = 5;
  plan.torn_batch_permille = 1000;
  FaultInjector injector(plan);
  (void)injector.on_force(3);
  const std::string text = injector.trace_to_string();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.rfind("# fault ", 0), 0u);  // '#' so parse.h skips it
  EXPECT_NE(text.find("site=log-force"), std::string::npos);
  EXPECT_NE(text.find("action=torn-tail"), std::string::npos);
}

TEST(FaultSite, NamesRoundTrip) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const auto back = fault_site_from_string(to_string(site));
    ASSERT_TRUE(back.has_value()) << to_string(site);
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(fault_site_from_string("no-such-site").has_value());
}

}  // namespace
}  // namespace argus
