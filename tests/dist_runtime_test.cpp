// Multi-site runtime tests: 2PC happy path and coordinator aborts,
// available-copies read/write semantics, the failure rule, stale-read
// prevention after recovery, and cross-site certification of the merged
// history. Replaces the old remote_object_test (simulated RPC latency on
// a single runtime) — sites are now full runtimes with their own commit
// pipelines and stable logs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/atomicity.h"
#include "dist/dist_runtime.h"
#include "hist/parse.h"
#include "hist/wellformed.h"
#include "obs/metrics_registry.h"
#include "spec/adts/bank_account.h"

namespace argus {
namespace {

// DistRuntime holds mutexes (not movable); build behind a unique_ptr.
std::unique_ptr<DistRuntime> make_bank(
    std::size_t sites, Protocol protocol,
    std::initializer_list<const char*> sharded,
    std::initializer_list<const char*> replicated) {
  DistOptions options;
  options.sites = sites;
  options.protocol = protocol;
  auto dist = std::make_unique<DistRuntime>(options);
  for (const char* name : sharded) {
    dist->create_sharded<BankAccountAdt>(name);
  }
  for (const char* name : replicated) {
    dist->create_replicated<BankAccountAdt>(name);
  }
  return dist;
}

std::int64_t read_balance(DistRuntime& dist, const std::string& var) {
  const auto t = dist.begin();
  const std::int64_t v = dist.read(*t, var, account::balance()).as_int();
  dist.commit(t);
  return v;
}

void certify_merged(DistRuntime& dist) {
  const History h = dist.merged_history();
  if (dist.protocol() == Protocol::kDynamic) {
    const auto wf = check_well_formed(h);
    EXPECT_TRUE(wf.ok()) << wf.summary();
    const auto verdict = check_dynamic_atomic(dist.merged_system(), h);
    EXPECT_TRUE(verdict.ok) << verdict.explanation;
  } else {
    const auto wf = check_well_formed_hybrid(h, dist.read_only_activities());
    EXPECT_TRUE(wf.ok()) << wf.summary();
    const auto verdict = check_hybrid_atomic(dist.merged_system(), h);
    EXPECT_TRUE(verdict.ok) << verdict.explanation;
  }
}

TEST(DistRuntime, TwoPhaseCommitHappyPath) {
  // s0 lives at site 0, s1 at site 1 (round-robin); a transfer between
  // them opens a participant at each site and must go through 2PC.
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(100));
    dist.write(*t, "s1", account::deposit(100));
    dist.commit(t);
    EXPECT_EQ(t->participants(), (std::vector<std::size_t>{0, 1}));
  }
  {
    const auto t = dist.begin();
    EXPECT_TRUE(dist.write(*t, "s0", account::withdraw(30)).is_unit());
    dist.write(*t, "s1", account::deposit(30));
    dist.commit(t);
  }
  EXPECT_EQ(read_balance(dist, "s0"), 70);
  EXPECT_EQ(read_balance(dist, "s1"), 130);

  const DistStats stats = dist.stats();
  EXPECT_EQ(stats.two_pc_commits, 2u);  // setup + transfer
  EXPECT_EQ(stats.aborts, 0u);
  certify_merged(dist);
}

TEST(DistRuntime, SingleParticipantCommitsAreOnePhase) {
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(50));
    dist.commit(t);
  }
  const DistStats stats = dist.stats();
  EXPECT_EQ(stats.one_phase_commits, 1u);
  EXPECT_EQ(stats.two_pc_commits, 0u);
  EXPECT_EQ(read_balance(dist, "s0"), 50);
}

TEST(DistRuntime, PrepareVetoAbortsAtEveryParticipant) {
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(100));
    dist.write(*t, "s1", account::deposit(100));
    dist.commit(t);
  }

  // Every log force fails from here on: the first participant's prepare
  // cannot stabilize its record, so the coordinator must abort the
  // global transaction at both sites.
  FaultPlan plan;
  plan.force_fail_permille = 1000;
  plan.force_max_retries = 0;
  plan.force_retry_backoff_us = 0;
  dist.set_fault_plan(plan);
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::withdraw(10));
    dist.write(*t, "s1", account::deposit(10));
    EXPECT_THROW(dist.commit(t), TransactionAborted);
  }
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    dist.site(i).runtime().set_fault_injector(nullptr);
  }

  EXPECT_EQ(read_balance(dist, "s0"), 100);
  EXPECT_EQ(read_balance(dist, "s1"), 100);
  const DistStats stats = dist.stats();
  EXPECT_EQ(stats.two_pc_commits, 1u);
  EXPECT_GE(stats.aborts, 1u);
  certify_merged(dist);
}

TEST(DistRuntime, MidCommitSiteFailureVetoesTheTransaction) {
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(100));
    dist.write(*t, "s1", account::deposit(100));
    dist.commit(t);
  }

  // The coordinator injector fails a site at the first liveness tick —
  // which the 2PC runs *inside* the protocol, before the first prepare.
  FaultPlan plan;
  plan.site_fail_permille = 1000;
  plan.max_faults = 1;
  dist.set_fault_plan(plan);
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::withdraw(10));
    dist.write(*t, "s1", account::deposit(10));
    try {
      dist.commit(t);
      FAIL() << "commit with a failed participant must abort";
    } catch (const TransactionAborted& e) {
      EXPECT_EQ(e.reason(), AbortReason::kUnavailable);
    }
  }
  const DistStats stats = dist.stats();
  EXPECT_EQ(stats.site_fails, 1u);
  EXPECT_GE(stats.unavailable_aborts, 1u);

  // Recover the failed site; the aborted transfer left no trace in the
  // balances, and the merged history still certifies.
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    dist.site(i).runtime().set_fault_injector(nullptr);
    if (!dist.site(i).up()) {
      EXPECT_TRUE(dist.recover(i));
    }
  }
  EXPECT_EQ(read_balance(dist, "s0"), 100);
  EXPECT_EQ(read_balance(dist, "s1"), 100);
  certify_merged(dist);
}

TEST(DistRuntime, AvailableCopiesServeReadsWhileAnyReplicaLives) {
  const auto distp = make_bank(3, Protocol::kHybrid, {}, {"r0"});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "r0", account::deposit(100));
    dist.commit(t);
  }

  // Two of three sites fail: reads keep being served by the survivor,
  // and writes apply to it alone.
  EXPECT_TRUE(dist.fail(1));
  EXPECT_TRUE(dist.fail(2));
  EXPECT_EQ(read_balance(dist, "r0"), 100);
  {
    const auto t = dist.begin();
    dist.write(*t, "r0", account::deposit(10));
    dist.commit(t);
    EXPECT_EQ(t->participants(), (std::vector<std::size_t>{0}));
  }
  EXPECT_EQ(read_balance(dist, "r0"), 110);

  // The last copy goes: unavailable.
  EXPECT_TRUE(dist.fail(0));
  {
    const auto t = dist.begin();
    try {
      dist.read(*t, "r0", account::balance());
      FAIL() << "no live copy: read must abort";
    } catch (const TransactionAborted& e) {
      EXPECT_EQ(e.reason(), AbortReason::kUnavailable);
    }
  }
  EXPECT_GE(dist.stats().unavailable_aborts, 1u);
  certify_merged(dist);
}

TEST(DistRuntime, StaleReadPreventionAfterRecover) {
  const auto distp = make_bank(2, Protocol::kHybrid, {}, {"r0"});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "r0", account::deposit(100));
    dist.commit(t);
  }

  // Site 1 misses a committed write, then recovers: the catch-up copier
  // restores its copy's *state*, but the copy stays unreadable.
  EXPECT_TRUE(dist.fail(1));
  {
    const auto t = dist.begin();
    dist.write(*t, "r0", account::deposit(50));
    dist.commit(t);
  }
  EXPECT_TRUE(dist.recover(1));
  EXPECT_GE(dist.stats().catchup_txns, 1u);
  const Replica* copy1 = dist.placement().find("r0")->replica_at(1);
  ASSERT_NE(copy1, nullptr);
  EXPECT_FALSE(copy1->readable.load());

  // The state did catch up (the administrative dump bypasses the
  // stale-read rule and sees both copies at 150)...
  for (const auto& entry : dist.dump(account::balance())) {
    EXPECT_EQ(entry.value.as_int(), 150) << "site " << entry.site;
  }

  // ...but a client read must not be served from the recovered copy: with
  // site 0 down it has no readable copy to fall back on, even though site
  // 1 is up and current.
  EXPECT_TRUE(dist.fail(0));
  {
    const auto t = dist.begin();
    try {
      dist.read(*t, "r0", account::balance());
      FAIL() << "recovered copy must not serve reads before a fresh write";
    } catch (const TransactionAborted& e) {
      EXPECT_EQ(e.reason(), AbortReason::kUnavailable);
    }
  }
  EXPECT_TRUE(dist.recover(0));

  // The next committed client write restores readability (it provably
  // made the copy current), and the copy then serves reads alone.
  {
    const auto t = dist.begin();
    dist.write(*t, "r0", account::deposit(25));
    dist.commit(t);
  }
  EXPECT_TRUE(copy1->readable.load());
  EXPECT_TRUE(dist.fail(0));
  EXPECT_EQ(read_balance(dist, "r0"), 175);
  EXPECT_TRUE(dist.recover(0));
  certify_merged(dist);
}

TEST(DistRuntime, ReadOnlyAuditSpansSitesAtOneSnapshot) {
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {"r0"});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    for (const char* name : {"s0", "s1", "r0"}) {
      dist.write(*t, name, account::deposit(100));
    }
    dist.commit(t);
  }
  {
    const auto audit = dist.begin(TxnKind::kReadOnly);
    std::int64_t total = 0;
    for (const char* name : {"s0", "s1", "r0"}) {
      total += dist.read(*audit, name, account::balance()).as_int();
    }
    dist.commit(audit);
    EXPECT_EQ(total, 300);
    EXPECT_NE(audit->snapshot_ts(), kNoTimestamp);
    EXPECT_EQ(audit->participants().size(), 2u);
  }
  EXPECT_EQ(dist.stats().read_only_commits, 1u);
  certify_merged(dist);
}

TEST(DistRuntime, ReadOnlyNeedsSnapshotProtocol) {
  const auto distp = make_bank(2, Protocol::kDynamic, {"s0"}, {});
  DistRuntime& dist = *distp;
  EXPECT_THROW(dist.begin(TxnKind::kReadOnly), UsageError);
}

TEST(DistRuntime, DynamicProtocolRunsTheSameDeployment) {
  const auto distp = make_bank(2, Protocol::kDynamic, {"s0", "s1"}, {"r0"});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    for (const char* name : {"s0", "s1", "r0"}) {
      dist.write(*t, name, account::deposit(100));
    }
    dist.commit(t);
  }
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::withdraw(40));
    dist.write(*t, "r0", account::deposit(40));
    dist.commit(t);
  }
  EXPECT_EQ(read_balance(dist, "s0"), 60);
  EXPECT_EQ(read_balance(dist, "r0"), 140);
  certify_merged(dist);
}

TEST(DistRuntime, MergedTraceParsesBackToTheMergedHistory) {
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {"r0"});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    for (const char* name : {"s0", "s1", "r0"}) {
      dist.write(*t, name, account::deposit(100));
    }
    dist.commit(t);
  }
  // A fault plan so the trace carries '#' fault-comment lines too.
  FaultPlan plan;
  plan.site_fail_permille = 1000;
  plan.site_recover_permille = 1000;
  plan.max_faults = 2;
  dist.set_fault_plan(plan);
  dist.tick_site_faults();  // both sites roll a fail; the budget covers both
  EXPECT_EQ(dist.stats().site_fails, 2u);
  dist.tick_site_faults();  // budget exhausted: no injected recovery
  EXPECT_EQ(dist.stats().site_recovers, 0u);
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    EXPECT_TRUE(dist.recover(i));
  }
  EXPECT_EQ(dist.stats().site_recovers, 2u);

  const std::string trace = dist.merged_trace();
  EXPECT_NE(trace.find("site0: "), std::string::npos);
  EXPECT_NE(trace.find("# coord "), std::string::npos);

  const ParseResult parsed = parse_history(trace);
  ASSERT_TRUE(parsed.history.has_value()) << parsed.error;
  const History merged = dist.merged_history();
  ASSERT_EQ(parsed.history->events().size(), merged.events().size());
  for (std::size_t i = 0; i < merged.events().size(); ++i) {
    EXPECT_EQ(parsed.history->events()[i], merged.events()[i]) << "event " << i;
  }
}

// ---- coordinator failover + cooperative termination (PR 8) -----------

// Pins a coordinator crash at `step` (first 2PC after the plan attaches)
// on a two-site bank seeded with 100/100 and drives one transfer into
// it. Returns whether the transfer's commit() returned (decision forced
// before the crash) or threw (presumed abort).
bool transfer_into_coordinator_crash(DistRuntime& dist, FaultSite step) {
  FaultPlan plan;
  plan.coord_crash_point = step;
  plan.coord_crash_at_arrival = 1;
  dist.set_fault_plan(plan);
  const auto t = dist.begin();
  dist.write(*t, "s0", account::withdraw(30));
  dist.write(*t, "s1", account::deposit(30));
  try {
    dist.commit(t);
    return true;
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kUnavailable);
    return false;
  }
}

TEST(DistRuntime, CoordinatorCrashAtEachStepLosesNoCommittedDecision) {
  // The tentpole acceptance property: crash the coordinator at every 2PC
  // protocol step; after recover_coordinator() + the termination
  // protocol, every forced decision survives, every unforced one is a
  // presumed abort, and no participant stays in doubt.
  const struct {
    FaultSite step;
    bool decision_survives;  // was the decision forced before the crash?
  } kSteps[] = {
      {FaultSite::kCoordPrePrepare, false},
      {FaultSite::kCoordPostPrepare, false},
      {FaultSite::kCoordPostDecision, true},
      {FaultSite::kCoordMidDelivery, true},
  };
  for (const auto& [step, decision_survives] : kSteps) {
    SCOPED_TRACE(to_string(step));
    const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
    DistRuntime& dist = *distp;
    {
      const auto t = dist.begin();
      dist.write(*t, "s0", account::deposit(100));
      dist.write(*t, "s1", account::deposit(100));
      dist.commit(t);
    }

    EXPECT_EQ(transfer_into_coordinator_crash(dist, step),
              decision_survives);
    EXPECT_FALSE(dist.coordinator_up());

    // While the coordinator is down, multi-site commits are refused.
    if (dist.site(0).up() && dist.site(1).up()) {
      const auto t = dist.begin();
      dist.write(*t, "s0", account::deposit(1));
      dist.write(*t, "s1", account::deposit(1));
      EXPECT_THROW(dist.commit(t), TransactionAborted);
      EXPECT_GE(dist.stats().coord_unavailable_aborts, 1u);
    }

    for (std::size_t i = 0; i < dist.site_count(); ++i) {
      dist.site(i).runtime().set_fault_injector(nullptr);
    }
    EXPECT_TRUE(dist.recover_coordinator());
    dist.run_termination_protocol();
    for (std::size_t i = 0; i < dist.site_count(); ++i) {
      if (!dist.site(i).up()) {
        EXPECT_TRUE(dist.recover(i));
      }
      EXPECT_TRUE(dist.site(i).tm().log().prepared_records().empty())
          << "site " << i << " still holds in-doubt records";
    }

    const std::int64_t s0 = read_balance(dist, "s0");
    const std::int64_t s1 = read_balance(dist, "s1");
    if (decision_survives) {
      EXPECT_EQ(s0, 70);
      EXPECT_EQ(s1, 130);
    } else {
      EXPECT_EQ(s0, 100);
      EXPECT_EQ(s1, 100);
    }
    EXPECT_EQ(s0 + s1, 200) << "conservation must hold either way";
    certify_merged(dist);
  }
}

TEST(DistRuntime, CoordinatorRecoveryIsIdempotent) {
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(100));
    dist.write(*t, "s1", account::deposit(100));
    dist.commit(t);
  }
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::withdraw(30));
    dist.write(*t, "s1", account::deposit(30));
    dist.commit(t);
  }

  // Crash/recover twice over: replaying the same decision log twice must
  // not double-apply anything (promotion is conditional on the record
  // still being prepared — and nothing is prepared here).
  EXPECT_TRUE(dist.crash_coordinator());
  EXPECT_FALSE(dist.crash_coordinator());
  EXPECT_TRUE(dist.recover_coordinator());
  EXPECT_FALSE(dist.recover_coordinator()) << "second recovery is a no-op";
  EXPECT_TRUE(dist.crash_coordinator());
  EXPECT_TRUE(dist.recover_coordinator());

  EXPECT_EQ(read_balance(dist, "s0"), 70);
  EXPECT_EQ(read_balance(dist, "s1"), 130);
  const DistStats stats = dist.stats();
  EXPECT_EQ(stats.coord_crashes, 2u);
  EXPECT_EQ(stats.coord_recovers, 2u);
  EXPECT_EQ(stats.promoted_commits, 0u) << "nothing was in doubt";
  certify_merged(dist);
}

TEST(DistRuntime, TerminationProtocolResolvesInDoubtViaSurvivingPeer) {
  // Mid-delivery coordinator crash: site 0 receives the decision, site 1
  // is left fenced with a prepared record. With the coordinator still
  // down, the termination protocol must resolve site 1 from site 0's
  // stable log — the cooperative path, no coordinator involved.
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(100));
    dist.write(*t, "s1", account::deposit(100));
    dist.commit(t);
  }

  EXPECT_TRUE(transfer_into_coordinator_crash(
      dist, FaultSite::kCoordMidDelivery))
      << "the decision was forced: commit() reports success";
  EXPECT_FALSE(dist.coordinator_up());
  EXPECT_TRUE(dist.site(0).up()) << "site 0 took its delivery";
  EXPECT_FALSE(dist.site(1).up()) << "site 1 fenced its in-doubt state";

  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    dist.site(i).runtime().set_fault_injector(nullptr);
  }
  EXPECT_GT(dist.run_termination_protocol(), 0u);
  EXPECT_FALSE(dist.coordinator_up()) << "resolved without the coordinator";
  EXPECT_TRUE(dist.site(1).up());
  EXPECT_TRUE(dist.site(1).tm().log().prepared_records().empty());
  EXPECT_GE(dist.stats().termination_peer_promotions, 1u);

  EXPECT_TRUE(dist.recover_coordinator());
  EXPECT_EQ(read_balance(dist, "s0"), 70);
  EXPECT_EQ(read_balance(dist, "s1"), 130);
  certify_merged(dist);
}

TEST(DistRuntime, CheckpointTruncatesOnceEveryParticipantAcknowledges) {
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(100));
    dist.write(*t, "s1", account::deposit(100));
    dist.commit(t);
  }
  // The happy path acks inline and checkpoints at the end of the 2PC:
  // nothing outstanding, one decision logged and already truncated.
  EXPECT_EQ(dist.decision_log().outstanding(), 0u);
  DistStats stats = dist.stats();
  EXPECT_EQ(stats.decisions_logged, 1u);
  EXPECT_EQ(stats.decisions_truncated, 1u);

  // A coordinator crash wipes the volatile ack table mid-decision: the
  // next decision stays outstanding until recovery re-derives the acks
  // from the participants' own stable logs and checkpoints.
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::withdraw(10));
    dist.write(*t, "s1", account::deposit(10));
    dist.commit(t);
  }
  EXPECT_EQ(dist.decision_log().outstanding(), 0u);
  EXPECT_TRUE(dist.crash_coordinator());
  // (Decisions already truncated survive trivially; log a fresh one by
  // recovering and committing again, then crash before its checkpoint —
  // simplest deterministic stand-in: crash wiped acks, so replaying and
  // re-syncing is recover_coordinator()'s job.)
  EXPECT_TRUE(dist.recover_coordinator());
  EXPECT_EQ(dist.decision_log().outstanding(), 0u)
      << "recovery re-syncs acks and truncates settled decisions";
  certify_merged(dist);
}

TEST(DistRuntime, InMemoryBaselineLogsNothing) {
  // durable_decisions=false is E18's baseline: the PR 6 in-memory commit
  // list, no decision-log forces at all.
  DistOptions options;
  options.sites = 2;
  options.protocol = Protocol::kHybrid;
  options.durable_decisions = false;
  DistRuntime dist(options);
  dist.create_sharded<BankAccountAdt>("s0");
  dist.create_sharded<BankAccountAdt>("s1");
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(100));
    dist.write(*t, "s1", account::deposit(100));
    dist.commit(t);
  }
  EXPECT_EQ(dist.stats().decisions_logged, 0u);
  EXPECT_EQ(dist.decision_log().outstanding(), 0u);
  EXPECT_EQ(read_balance(dist, "s0"), 100);
}

TEST(DistRuntime, LostPrepareMessagesVetoCleanly) {
  // Every message is lost and the budget covers exactly one site's
  // prepare attempts: phase 1 cannot deliver prepare, so the 2PC vetoes
  // before anything is in doubt — nothing prepared, nothing fenced.
  // (Decide-loss fencing is the sweep's coord-lossy mixes' territory.)
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
  DistRuntime& dist = *distp;
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(100));
    dist.write(*t, "s1", account::deposit(100));
    dist.commit(t);
  }

  FaultPlan plan;
  plan.msg_loss_permille = 1000;
  plan.msg_retries = 1;
  plan.max_faults = 2;  // exactly the prepare attempts of one commit
  dist.set_fault_plan(plan);
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::withdraw(10));
    dist.write(*t, "s1", account::deposit(10));
    EXPECT_THROW(dist.commit(t), TransactionAborted)
        << "a prepare that never arrives is a veto";
  }
  EXPECT_GE(dist.stats().msgs_lost, 2u);
  for (std::size_t i = 0; i < dist.site_count(); ++i) {
    dist.site(i).runtime().set_fault_injector(nullptr);
    if (!dist.site(i).up()) {
      EXPECT_TRUE(dist.recover(i));
    }
  }
  EXPECT_EQ(read_balance(dist, "s0"), 100);
  EXPECT_EQ(read_balance(dist, "s1"), 100);
  certify_merged(dist);
}

TEST(DistRuntime, RegisterMetricsExportsDistCounters) {
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0", "s1"}, {});
  DistRuntime& dist = *distp;
  MetricsRegistry registry;
  dist.register_metrics(registry);
  {
    const auto t = dist.begin();
    dist.write(*t, "s0", account::deposit(100));
    dist.write(*t, "s1", account::deposit(100));
    dist.commit(t);
  }
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("argus_dist_txns_begun_total 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("argus_dist_two_pc_commits_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("argus_dist_decisions_logged_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("argus_dist_decisions_outstanding 0"),
            std::string::npos)
      << text;
  // Scrapes are live: a coordinator crash/recover cycle shows up.
  EXPECT_TRUE(dist.crash_coordinator());
  EXPECT_TRUE(dist.recover_coordinator());
  const std::string after = registry.prometheus_text();
  EXPECT_NE(after.find("argus_dist_coord_crashes_total 1"),
            std::string::npos)
      << after;
  EXPECT_NE(after.find("argus_dist_coord_recovers_total 1"),
            std::string::npos)
      << after;
}

TEST(DistRuntime, UsageErrorsAreUsageErrors) {
  const auto distp = make_bank(2, Protocol::kHybrid, {"s0"}, {});
  DistRuntime& dist = *distp;
  EXPECT_THROW(dist.create_sharded<BankAccountAdt>("s0"), UsageError);
  const auto t = dist.begin();
  EXPECT_THROW(dist.read(*t, "nope", account::balance()), UsageError);
  const auto audit = dist.begin(TxnKind::kReadOnly);
  EXPECT_THROW(dist.write(*audit, "s0", account::deposit(1)), UsageError);
  dist.abort(t);
  dist.abort(audit);
  EXPECT_THROW(dist.commit(t), UsageError);
}

}  // namespace
}  // namespace argus
