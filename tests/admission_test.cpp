// Admission predicates (E5's measurement machinery): protocol inclusion
// — 2PL ⊆ commutativity locking ⊆ dynamic atomicity — on both
// handcrafted and randomly generated atomic histories.
#include <gtest/gtest.h>

#include "check/admission.h"
#include "check/atomicity.h"
#include "check/random_history.h"
#include "hist/wellformed.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

SystemSpec set_system() {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  return sys;
}

TEST(Admission, SerialHistoryAdmittedByAll) {
  const auto sys = set_system();
  const History h = hist({
      invoke(X, A, op("insert", 3)),
      respond(X, A, ok()),
      commit(X, A),
      invoke(X, B, op("member", 3)),
      respond(X, B, Value{true}),
      commit(X, B),
  });
  EXPECT_TRUE(admitted_by_two_phase_locking(sys, h));
  EXPECT_TRUE(admitted_by_commutativity_locking(sys, h));
  EXPECT_TRUE(admitted_by_dynamic_atomicity(sys, h));
}

TEST(Admission, ConcurrentReadsAdmittedByAll) {
  const auto sys = set_system();
  const History h = hist({
      invoke(X, A, op("member", 1)),
      invoke(X, B, op("member", 2)),
      respond(X, A, Value{false}),
      respond(X, B, Value{false}),
      commit(X, A),
      commit(X, B),
  });
  EXPECT_TRUE(admitted_by_two_phase_locking(sys, h));
  EXPECT_TRUE(admitted_by_commutativity_locking(sys, h));
  EXPECT_TRUE(admitted_by_dynamic_atomicity(sys, h));
}

TEST(Admission, CommutingWritesSeparateTheLockingProtocols) {
  const auto sys = set_system();
  // Two inserts of *different* elements overlap: commutativity locking
  // admits (they commute), 2PL does not (write locks conflict).
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      invoke(X, B, op("insert", 2)),
      respond(X, A, ok()),
      respond(X, B, ok()),
      commit(X, A),
      commit(X, B),
  });
  EXPECT_FALSE(admitted_by_two_phase_locking(sys, h));
  EXPECT_TRUE(admitted_by_commutativity_locking(sys, h));
  EXPECT_TRUE(admitted_by_dynamic_atomicity(sys, h));
}

TEST(Admission, LocksReleasedAtCommit) {
  const auto sys = set_system();
  // b's conflicting insert only starts after a committed: fine for 2PL.
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      commit(X, A),
      invoke(X, B, op("insert", 1)),
      respond(X, B, ok()),
      commit(X, B),
  });
  EXPECT_TRUE(admitted_by_two_phase_locking(sys, h));
}

TEST(Admission, LocksReleasedAtAbort) {
  const auto sys = set_system();
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      respond(X, A, ok()),
      abort(X, A),
      invoke(X, B, op("delete", 1)),
      respond(X, B, ok()),
      commit(X, B),
  });
  EXPECT_TRUE(admitted_by_two_phase_locking(sys, h));
  EXPECT_TRUE(admitted_by_commutativity_locking(sys, h));
}

TEST(Admission, HeldLockBlocksEvenWithoutResponse) {
  const auto sys = set_system();
  // a invoked (lock acquired) but has not responded; b's conflicting
  // invocation is not admissible.
  const History h = hist({
      invoke(X, A, op("insert", 1)),
      invoke(X, B, op("member", 1)),
      respond(X, A, ok()),
      respond(X, B, Value{true}),
      commit(X, A),
      commit(X, B),
  });
  EXPECT_FALSE(admitted_by_commutativity_locking(sys, h));
}

// ----------------------------------------------------- random histories

class AdmissionInclusion
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(AdmissionInclusion, ProtocolHierarchyHolds) {
  const auto& [adt, seed] = GetParam();
  SystemSpec sys;
  sys.add_object(X, adt);

  RandomHistoryOptions options;
  options.activities = 4;
  options.ops_per_activity = 3;
  options.abort_percent = 20;
  options.seed = seed;
  const History h = random_atomic_history(sys, options);

  // Generated histories are well-formed and atomic by construction.
  ASSERT_TRUE(check_well_formed(h).ok()) << h.to_string();
  ASSERT_TRUE(check_atomic(sys, h).ok) << h.to_string();

  // Inclusion: 2PL ⊆ commutativity ⊆ dynamic (the paper's optimality
  // hierarchy). Note both inclusions are strict *in aggregate* (E5
  // measures the gap); on any single history we can only assert the
  // implications.
  if (admitted_by_two_phase_locking(sys, h)) {
    EXPECT_TRUE(admitted_by_commutativity_locking(sys, h)) << h.to_string();
  }
  if (admitted_by_commutativity_locking(sys, h)) {
    EXPECT_TRUE(admitted_by_dynamic_atomicity(sys, h)) << h.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdmissionInclusion,
    ::testing::Combine(::testing::Values("int_set", "bank_account",
                                         "kv_store", "rw_register"),
                       ::testing::Range<std::uint64_t>(1, 26)));

TEST(RandomHistory, Deterministic) {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  RandomHistoryOptions options;
  options.seed = 7;
  EXPECT_EQ(random_atomic_history(sys, options),
            random_atomic_history(sys, options));
}

TEST(RandomHistory, RespectsActivityCount) {
  SystemSpec sys;
  sys.add_object(X, "kv_store");
  RandomHistoryOptions options;
  options.activities = 5;
  options.seed = 3;
  const History h = random_atomic_history(sys, options);
  EXPECT_EQ(h.activities().size(), 5u);
}

TEST(RandomHistory, AbortedActivitiesAppear) {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  RandomHistoryOptions options;
  options.activities = 10;
  options.abort_percent = 50;
  options.seed = 11;
  const History h = random_atomic_history(sys, options);
  EXPECT_FALSE(h.aborted().empty());
  EXPECT_FALSE(h.committed().empty());
}

TEST(RandomHistory, MultiObjectSystems) {
  SystemSpec sys;
  sys.add_object(X, "int_set");
  sys.add_object(Y, "counter");
  RandomHistoryOptions options;
  options.activities = 4;
  options.ops_per_activity = 4;
  options.seed = 5;
  const History h = random_atomic_history(sys, options);
  EXPECT_TRUE(check_atomic(sys, h).ok) << h.to_string();
  EXPECT_EQ(h.objects().size(), 2u);
}

}  // namespace
}  // namespace argus
