// MetricsRegistry: handle identity, concurrent updates, callback gauges
// and collectors, and the two export formats.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/errors.h"
#include "obs/metrics_registry.h"

namespace argus {
namespace {

TEST(MetricsRegistry, CounterIdentityIsNameAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("argus_test_total", "help", {{"k", "a"}});
  Counter& b = reg.counter("argus_test_total", "help", {{"k", "b"}});
  Counter& a_again = reg.counter("argus_test_total", "help", {{"k", "a"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a_again);
  a.inc(3);
  b.inc();
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("argus_metric", "help");
  EXPECT_THROW(reg.gauge("argus_metric", "help"), UsageError);
}

TEST(MetricsRegistry, ConcurrentCounterBumpsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("argus_bumps_total", "help");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(MetricsRegistry, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("argus_commits_total", "Commits", {{"mode", "pipelined"}})
      .inc(42);
  reg.gauge("argus_watermark", "Watermark").set(17.5);
  Histogram& h = reg.histogram("argus_latency_us", "Latency");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP argus_commits_total Commits"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE argus_commits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("argus_commits_total{mode=\"pipelined\"} 42"),
            std::string::npos);
  EXPECT_NE(text.find("argus_watermark 17.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE argus_latency_us summary"), std::string::npos);
  EXPECT_NE(text.find("argus_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("argus_latency_us_count 100"), std::string::npos);
  EXPECT_NE(text.find("argus_latency_us_sum 5050"), std::string::npos);
}

TEST(MetricsRegistry, JsonFormat) {
  MetricsRegistry reg;
  reg.counter("argus_commits_total", "Commits").inc(7);
  reg.histogram("argus_latency_us", "Latency").observe(4.0);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"argus_commits_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"argus_latency_us.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"argus_latency_us.mean\": 4"), std::string::npos);
}

TEST(MetricsRegistry, CallbackGaugeSampledAtScrapeTime) {
  MetricsRegistry reg;
  double source = 1.0;
  reg.gauge_callback("argus_live_value", "Live", {}, [&source] {
    return source;
  });
  EXPECT_NE(reg.prometheus_text().find("argus_live_value 1"),
            std::string::npos);
  source = 2.0;
  EXPECT_NE(reg.prometheus_text().find("argus_live_value 2"),
            std::string::npos);
}

TEST(MetricsRegistry, CollectorEmitsDescribedSamples) {
  MetricsRegistry reg;
  reg.describe("argus_objects_total", "Objects", "counter");
  reg.add_collector([] {
    return std::vector<MetricSample>{
        {"argus_objects_total", {{"object", "x"}}, 3.0},
        {"argus_objects_total", {{"object", "y"}}, 4.0},
    };
  });
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE argus_objects_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("argus_objects_total{object=\"x\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("argus_objects_total{object=\"y\"} 4"),
            std::string::npos);
  EXPECT_NE(reg.json().find("\"argus_objects_total{object=\\\"x\\\"}\": 3"),
            std::string::npos);
}

}  // namespace
}  // namespace argus
