// DynamicAtomicObject protocol tests: isolation via intentions lists,
// data-dependent admission (the §5.1 behaviours, live), blocking,
// deadlock resolution, and history capture.
#include <gtest/gtest.h>

#include "check/atomicity.h"
#include "core/runtime.h"
#include "hist/wellformed.h"
#include "spec/adts/bank_account.h"
#include "spec/adts/counter.h"
#include "spec/adts/fifo_queue.h"
#include "spec/adts/int_set.h"
#include "test_util.h"

namespace argus {
namespace {

using namespace testutil;

TEST(DynamicObject, CommitMakesEffectsVisible) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t1 = rt.begin();
  EXPECT_EQ(set->invoke(*t1, intset::insert(3)), ok());
  rt.commit(t1);
  auto t2 = rt.begin();
  EXPECT_EQ(set->invoke(*t2, intset::member(3)), Value{true});
  rt.commit(t2);
  EXPECT_TRUE(set->committed_state().contains(3));
}

TEST(DynamicObject, AbortDiscardsIntentions) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t1 = rt.begin();
  set->invoke(*t1, intset::insert(3));
  rt.abort(t1);
  EXPECT_FALSE(set->committed_state().contains(3));
  auto t2 = rt.begin();
  EXPECT_EQ(set->invoke(*t2, intset::member(3)), Value{false});
  rt.commit(t2);
}

TEST(DynamicObject, OwnWritesVisibleToSelf) {
  Runtime rt;
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  auto t = rt.begin();
  acct->invoke(*t, account::deposit(10));
  EXPECT_EQ(acct->invoke(*t, account::balance()), Value{10});
  acct->invoke(*t, account::withdraw(4));
  EXPECT_EQ(acct->invoke(*t, account::balance()), Value{6});
  rt.commit(t);
  EXPECT_EQ(acct->committed_state(), 6);
}

TEST(DynamicObject, ConcurrentCoveredWithdrawsProceed) {
  // §5.1 live: balance 10 covers 4+3 — neither withdraw blocks.
  Runtime rt;
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(10));
  rt.commit(setup);

  auto tb = rt.begin();
  auto tc = rt.begin();
  EXPECT_EQ(acct->invoke(*tb, account::withdraw(4)), ok());
  EXPECT_EQ(acct->invoke(*tc, account::withdraw(3)), ok());  // no blocking
  rt.commit(tc);
  rt.commit(tb);
  EXPECT_EQ(acct->committed_state(), 3);

  const auto verdict = check_dynamic_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(DynamicObject, UncoveredWithdrawBlocksUntilAbort) {
  // Balance 5: withdraw(4) held by tb makes tc's withdraw(3) wait; when
  // tb aborts, tc proceeds with result ok.
  Runtime rt;
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(5));
  rt.commit(setup);

  auto tb = rt.begin();
  auto tc = rt.begin();
  EXPECT_EQ(acct->invoke(*tb, account::withdraw(4)), ok());

  auto blocked = expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*tc, account::withdraw(3)), ok());
    rt.commit(tc);
  });
  rt.abort(tb);
  join_within(blocked);
  EXPECT_EQ(acct->committed_state(), 2);
}

TEST(DynamicObject, UncoveredWithdrawBlocksUntilCommitThenInsufficient) {
  Runtime rt;
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(5));
  rt.commit(setup);

  auto tb = rt.begin();
  auto tc = rt.begin();
  EXPECT_EQ(acct->invoke(*tb, account::withdraw(4)), ok());

  auto blocked = expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*tc, account::withdraw(3)),
              Value{kInsufficientFunds});
    rt.commit(tc);
  });
  rt.commit(tb);
  join_within(blocked);
  EXPECT_EQ(acct->committed_state(), 1);
}

TEST(DynamicObject, DepositNeededForWithdrawConflicts) {
  // §5.1's second case: balance 2, pending deposit(5); withdraw(3) would
  // need the deposit and must wait.
  Runtime rt;
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(2));
  rt.commit(setup);

  auto tdep = rt.begin();
  auto twdr = rt.begin();
  acct->invoke(*tdep, account::deposit(5));
  auto blocked = expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*twdr, account::withdraw(3)), ok());
    rt.commit(twdr);
  });
  rt.commit(tdep);
  join_within(blocked);
  EXPECT_EQ(acct->committed_state(), 4);
}

TEST(DynamicObject, DepositNotNeededDoesNotConflict) {
  Runtime rt;
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(10));
  rt.commit(setup);

  auto tdep = rt.begin();
  auto twdr = rt.begin();
  acct->invoke(*tdep, account::deposit(5));
  EXPECT_EQ(acct->invoke(*twdr, account::withdraw(3)), ok());  // no block
  rt.commit(twdr);
  rt.commit(tdep);
  EXPECT_EQ(acct->committed_state(), 12);
}

TEST(DynamicObject, ObserverBlocksOnPendingMutator) {
  Runtime rt;
  auto acct = rt.create_dynamic<BankAccountAdt>("a");
  auto setup = rt.begin();
  acct->invoke(*setup, account::deposit(10));
  rt.commit(setup);

  auto tw = rt.begin();
  auto tr = rt.begin();
  acct->invoke(*tw, account::deposit(1));
  auto blocked = expect_blocks([&] {
    EXPECT_EQ(acct->invoke(*tr, account::balance()), Value{11});
    rt.commit(tr);
  });
  rt.commit(tw);
  join_within(blocked);
}

TEST(DynamicObject, CounterSerializesCompletely) {
  Runtime rt;
  auto ctr = rt.create_dynamic<CounterAdt>("c");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  EXPECT_EQ(ctr->invoke(*t1, counter::increment()), Value{1});
  auto blocked = expect_blocks([&] {
    EXPECT_EQ(ctr->invoke(*t2, counter::increment()), Value{2});
    rt.commit(t2);
  });
  rt.commit(t1);
  join_within(blocked);
  EXPECT_EQ(ctr->committed_state(), 2);
}

TEST(DynamicObject, EqualValueEnqueuesInterleave) {
  // §5.1's observation live: equal-value enqueues commute, so two
  // transactions' enqueue(1)s overlap — inadmissible under any static
  // conflict table that ignores arguments, admissible here.
  Runtime rt;
  auto q = rt.create_dynamic<FifoQueueAdt>("q");
  auto ta = rt.begin();
  auto tb = rt.begin();
  q->invoke(*ta, fifo::enqueue(1));
  q->invoke(*tb, fifo::enqueue(1));  // no blocking
  rt.commit(ta);
  rt.commit(tb);
  auto tc = rt.begin();
  EXPECT_EQ(q->invoke(*tc, fifo::dequeue()), Value{1});
  EXPECT_EQ(q->invoke(*tc, fifo::dequeue()), Value{1});
  rt.commit(tc);

  const auto verdict = check_dynamic_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(DynamicObject, DivergedIntentionBlocksConflictConservatively) {
  // The paper's full §5.1 interleaving (1,1,2,2 alternating between two
  // transactions) is dynamic atomic *as a completed history* (see
  // paper_traces_test), but no online implementation can admit its third
  // step safely: with ta holding [1,2] and tb holding [1], a commit of
  // both pins an order that later dequeues would expose. The object
  // therefore blocks ta's enqueue(2) until tb resolves.
  Runtime rt;
  auto q = rt.create_dynamic<FifoQueueAdt>("q");
  auto ta = rt.begin();
  auto tb = rt.begin();
  q->invoke(*ta, fifo::enqueue(1));
  q->invoke(*tb, fifo::enqueue(1));
  auto blocked = expect_blocks([&] {
    q->invoke(*ta, fifo::enqueue(2));
    rt.commit(ta);
  });
  rt.commit(tb);
  join_within(blocked);
  EXPECT_EQ(q->committed_state(),
            (FifoQueueAdt::State{1, 1, 2}));

  const auto verdict = check_dynamic_atomic(rt.system(), rt.history());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(DynamicObject, DistinctEnqueuesConflict) {
  Runtime rt;
  auto q = rt.create_dynamic<FifoQueueAdt>("q");
  auto ta = rt.begin();
  auto tb = rt.begin();
  q->invoke(*ta, fifo::enqueue(1));
  auto blocked = expect_blocks([&] {
    q->invoke(*tb, fifo::enqueue(2));
    rt.commit(tb);
  });
  rt.commit(ta);
  join_within(blocked);
}

TEST(DynamicObject, DequeueOnEmptyWaitsForProducer) {
  Runtime rt;
  auto q = rt.create_dynamic<FifoQueueAdt>("q");
  auto consumer = rt.begin();
  auto blocked = expect_blocks([&] {
    EXPECT_EQ(q->invoke(*consumer, fifo::dequeue()), Value{7});
    rt.commit(consumer);
  });
  auto producer = rt.begin();
  q->invoke(*producer, fifo::enqueue(7));
  rt.commit(producer);
  join_within(blocked);
}

TEST(DynamicObject, DeadlockDetectedAndVictimAborted) {
  Runtime rt;
  auto c1 = rt.create_dynamic<CounterAdt>("c1");
  auto c2 = rt.create_dynamic<CounterAdt>("c2");
  auto t1 = rt.begin();
  auto t2 = rt.begin();
  c1->invoke(*t1, counter::increment());
  c2->invoke(*t2, counter::increment());

  // t1 -> c2 (held by t2), t2 -> c1 (held by t1): cycle. The younger
  // transaction (t2) is doomed; t1 proceeds.
  auto fut = std::async(std::launch::async, [&] {
    try {
      c2->invoke(*t1, counter::increment());
      rt.commit(t1);
      return true;
    } catch (const TransactionAborted&) {
      rt.abort(t1);
      return false;
    }
  });
  bool t2_aborted = false;
  try {
    c1->invoke(*t2, counter::increment());
    rt.commit(t2);
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kDeadlock);
    rt.abort(t2);
    t2_aborted = true;
  }
  const bool t1_committed = fut.get();
  // Exactly one progresses.
  EXPECT_TRUE(t1_committed || !t2_aborted);
  EXPECT_TRUE(t2_aborted || !t1_committed);
  EXPECT_GE(rt.tm().detector().deadlocks_resolved(), 1u);
}

TEST(DynamicObject, ReadOnlyTxnRejectsMutator) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t = rt.begin_read_only();
  EXPECT_THROW(set->invoke(*t, intset::insert(1)), UsageError);
  rt.abort(t);
}

TEST(DynamicObject, HistoryIsPlainAlphabetWellFormed) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t1 = rt.begin();
  set->invoke(*t1, intset::insert(1));
  rt.commit(t1);
  auto t2 = rt.begin();
  set->invoke(*t2, intset::member(1));
  rt.abort(t2);
  const auto wf = check_well_formed(rt.history());
  EXPECT_TRUE(wf.ok()) << wf.summary();
}

TEST(DynamicObject, IntentionsReportedForLogging) {
  Runtime rt;
  auto set = rt.create_dynamic<IntSetAdt>("s");
  auto t = rt.begin();
  set->invoke(*t, intset::insert(1));
  set->invoke(*t, intset::del(2));
  const auto intentions = set->intentions_of(*t);
  ASSERT_EQ(intentions.size(), 2u);
  EXPECT_EQ(intentions[0].op, intset::insert(1));
  EXPECT_EQ(intentions[1].op, intset::del(2));
  rt.commit(t);
  EXPECT_TRUE(set->intentions_of(*t).empty());
}

}  // namespace
}  // namespace argus
